//! Behavioural pins for the adaptive serving loop: divergence flips exactly
//! the diverged grid entry (and nothing else), a cleared divergence reverts
//! the override on the next re-check, and a service *without* adaptation
//! stays bit-identical to the serial [`Selector`] under multithreaded load
//! even while `observe` is being called into it.
//!
//! The re-evaluator here is fully synthetic — a two-mode scorer flipped by
//! an `AtomicBool` stands in for "the live system diverged from the model"
//! — so every assertion is deterministic and runs in microseconds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use bine_net::ObservedTiming;
use bine_sched::Collective;
use bine_tune::{
    AdaptPolicy, DecisionTable, Entry, Reevaluator, ScoreModel, Selector, ServiceSelector,
};

const MODELLED_US: f64 = 100.0;
const FAULTED_US: f64 = 400.0;
const COMMITTED: &str = "bine-large";
const CHALLENGER: &str = "ring";

/// Two allreduce grid entries (8 and 32 ranks) plus a broadcast entry, all
/// committed to `bine-large` with the same modelled score — only the entry
/// the test feeds diverged observations into may flip.
fn table() -> DecisionTable {
    let e = |collective, nodes: usize, pick: &str| Entry {
        collective,
        dist: None,
        nodes,
        vector_bytes: 1 << 20,
        pick: pick.into(),
        model: ScoreModel::Sync,
        time_us: MODELLED_US,
    };
    DecisionTable {
        system: "Adaptbox".into(),
        entries: vec![
            e(Collective::Allreduce, 8, COMMITTED),
            e(Collective::Allreduce, 32, COMMITTED),
            e(Collective::Broadcast, 8, "bine-tree"),
        ],
    }
}

fn policy() -> AdaptPolicy {
    AdaptPolicy {
        min_samples: 8,
        divergence: 1.5,
        recheck_interval: 4,
    }
}

/// A two-mode scorer: while `faulted` is set the committed pick costs
/// [`FAULTED_US`] and the challenger wins; once cleared the committed pick
/// scores at its modelled cost and wins its slot back. Anything else is
/// unscorable, so the winner is always one of the two.
fn reevaluator(faulted: Arc<AtomicBool>) -> Reevaluator {
    Reevaluator::new(
        Arc::new(|_, _, _| vec![CHALLENGER.to_string()]),
        Arc::new(move |pick, _, _, _| {
            let faulted = faulted.load(Ordering::SeqCst);
            match pick {
                COMMITTED => Some(if faulted { FAULTED_US } else { MODELLED_US }),
                CHALLENGER => Some(if faulted { 50.0 } else { 300.0 }),
                _ => None,
            }
        }),
    )
}

fn observe_n(service: &ServiceSelector, nodes: usize, time_us: f64, n: u64) {
    for _ in 0..n {
        service.observe_at(
            0,
            Collective::Allreduce,
            nodes,
            1 << 20,
            ObservedTiming::execution(time_us),
        );
    }
}

/// The compiled algorithm name the service serves for an allreduce query.
fn served(service: &ServiceSelector, nodes: usize) -> String {
    service
        .compiled_at(0, Collective::Allreduce, nodes, 1 << 20)
        .expect("compiled")
        .algorithm
        .clone()
}

#[test]
fn divergence_flips_exactly_the_diverged_grid_entry() {
    let faulted = Arc::new(AtomicBool::new(true));
    let service = ServiceSelector::from_tables(&[table()])
        .with_adaptation(policy(), reevaluator(Arc::clone(&faulted)));
    assert!(service.adaptation_enabled());
    assert_eq!(served(&service, 8), COMMITTED, "committed before feedback");

    // The sibling entry observes exactly its modelled cost — healthy.
    observe_n(&service, 32, MODELLED_US, 8);
    // The 8-rank entry observes a 4x blowup: at `min_samples` the mean
    // clears the divergence threshold and the re-evaluation promotes the
    // challenger.
    observe_n(&service, 8, FAULTED_US, 8);

    let overlay = service.overlay();
    assert_eq!(overlay.len(), 1, "exactly one entry flips: {overlay:?}");
    let entry = &overlay.entries[0];
    assert_eq!(entry.system, "Adaptbox");
    assert_eq!(entry.collective, Collective::Allreduce);
    assert_eq!(entry.nodes, 8);
    assert_eq!(entry.committed, COMMITTED);
    assert_eq!(entry.pick, CHALLENGER);
    assert_eq!(entry.epoch, 1);
    assert!(entry.samples >= 8);
    assert!(entry.observed_mean_us >= 1.5 * MODELLED_US);
    assert_eq!(entry.modelled_us, MODELLED_US);
    assert_eq!(entry.challenger_us, 50.0);

    // The warm request path serves the override; the sibling entry and the
    // committed index itself are untouched.
    assert_eq!(served(&service, 8), CHALLENGER);
    assert_eq!(served(&service, 32), COMMITTED);
    let serial = Selector::from_table(&table());
    let committed = serial
        .choose(Collective::Allreduce, 8, 1 << 20)
        .expect("tuned");
    assert_eq!(committed.algorithm, COMMITTED, "committed table unchanged");
    assert_eq!(
        (service.overrides(), service.reverts(), service.reevals()),
        (1, 0, 1)
    );
}

#[test]
fn override_reverts_once_the_divergence_clears() {
    let faulted = Arc::new(AtomicBool::new(true));
    let service = ServiceSelector::from_tables(&[table()])
        .with_adaptation(policy(), reevaluator(Arc::clone(&faulted)));
    observe_n(&service, 8, FAULTED_US, 8);
    assert_eq!(served(&service, 8), CHALLENGER, "override installed");

    // Conditions return to what the model predicted: the periodic re-check
    // (every `recheck_interval`-th observation on an overridden entry)
    // re-scores the committed pick, which wins its slot back.
    faulted.store(false, Ordering::SeqCst);
    observe_n(&service, 8, MODELLED_US, 4);

    assert!(
        service.overlay().is_empty(),
        "override reverted: {:?}",
        service.overlay()
    );
    assert_eq!(served(&service, 8), COMMITTED);
    assert_eq!(
        (service.overrides(), service.reverts(), service.reevals()),
        (1, 1, 2)
    );
}

/// Adaptation off: picks stay bit-identical to the serial [`Selector`]
/// under an 8-thread hammering that interleaves `observe` calls (no-ops on
/// a service without a re-evaluator) with the query stream.
#[test]
fn without_adaptation_picks_stay_serial_identical_under_stress() {
    let t = table();
    let mut serial = Selector::from_table(&t).with_cache_capacity(64);
    let queries: Vec<(Collective, usize)> = vec![
        (Collective::Allreduce, 8),
        (Collective::Allreduce, 16),
        (Collective::Allreduce, 32),
        (Collective::Broadcast, 8),
        (Collective::Broadcast, 16),
    ];
    let expected: Vec<(String, String)> = queries
        .iter()
        .map(|&(collective, nodes)| {
            let pick = serial
                .choose(collective, nodes, 1 << 20)
                .expect("tuned")
                .algorithm
                .to_string();
            let compiled = serial
                .compiled(collective, nodes, 1 << 20)
                .expect("compiled")
                .algorithm
                .clone();
            (pick, compiled)
        })
        .collect();

    let service = Arc::new(ServiceSelector::from_tables(&[t]));
    assert!(!service.adaptation_enabled());
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..threads)
        .map(|offset| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..50 {
                    let j = (round + offset) % queries.len();
                    let (collective, nodes) = queries[j];
                    let (want_pick, want_compiled) = &expected[j];
                    let got = service
                        .choose_at(0, collective, nodes, 1 << 20)
                        .expect("pick");
                    assert_eq!(got.algorithm, want_pick);
                    let compiled = service
                        .compiled_at(0, collective, nodes, 1 << 20)
                        .expect("compiled");
                    assert_eq!(&compiled.algorithm, want_compiled);
                    // Feeding wildly diverged timings must change nothing:
                    // there is no re-evaluator to act on them.
                    service.observe_at(
                        0,
                        collective,
                        nodes,
                        1 << 20,
                        ObservedTiming::execution(1e9),
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }
    assert!(service.overlay().is_empty());
    assert_eq!(
        (service.overrides(), service.reverts(), service.reevals()),
        (0, 0, 0)
    );
}
