//! Concurrency pins for the serving layer: [`ServiceSelector`] must answer
//! every query stream — cold, warm, or hammered from many threads at once —
//! with picks bit-identical to the serial [`Selector`], while respecting
//! the per-shard cache capacity and compiling each entry exactly once under
//! single-flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use bine_sched::{Collective, SizeDist};
use bine_tune::{
    fallback_pick, CompileAttempt, DecisionTable, DegradePolicy, Entry, ScoreModel, Selector,
    ServiceSelector,
};
use proptest::prelude::*;

/// A two-collective table with enough breakpoints that random queries
/// exercise clamping, floor lookup and multiple distinct slots. Picks are
/// all buildable at power-of-two rank counts.
fn table() -> DecisionTable {
    let e = |collective, nodes: usize, bytes: u64, pick: &str| Entry {
        collective,
        dist: None,
        nodes,
        vector_bytes: bytes,
        pick: pick.into(),
        model: ScoreModel::Sync,
        time_us: 1.0,
    };
    DecisionTable {
        system: "Stressbox".into(),
        entries: vec![
            e(Collective::Allreduce, 8, 32, "recursive-doubling"),
            e(Collective::Allreduce, 8, 1 << 20, "bine-large"),
            e(Collective::Allreduce, 32, 32, "recursive-doubling"),
            e(Collective::Allreduce, 32, 1 << 16, "bine-large+seg2"),
            e(Collective::Allreduce, 32, 1 << 20, "bine-large+seg8"),
            e(Collective::Broadcast, 8, 32, "bine-tree"),
            e(Collective::Broadcast, 32, 1 << 20, "bine-scatter-allgather"),
        ],
    }
}

/// The query grid the stress threads draw from: power-of-two node counts
/// (every pick above is buildable there) across both collectives and sizes
/// spanning all byte breakpoints.
fn queries() -> Vec<(Collective, usize, u64)> {
    let mut q = Vec::new();
    for &collective in &[Collective::Allreduce, Collective::Broadcast] {
        for &nodes in &[4usize, 8, 16, 32, 64] {
            for &bytes in &[1u64, 32, 4096, 1 << 16, 1 << 20, 1 << 24] {
                q.push((collective, nodes, bytes));
            }
        }
    }
    q
}

/// What the serial selector answers for every query: the pick, plus the
/// compiled schedule's identity-relevant fields (algorithm name carries the
/// segment suffix; rank count and step count pin the build).
struct Expected {
    algorithm: String,
    segments: usize,
    compiled_name: String,
    num_ranks: usize,
    num_steps: usize,
}

fn expectations(queries: &[(Collective, usize, u64)]) -> Vec<Expected> {
    // Capacity large enough that the serial baseline never evicts — every
    // query's compiled result is the freshly- or cache-built truth.
    let mut serial = Selector::from_table(&table()).with_cache_capacity(queries.len());
    queries
        .iter()
        .map(|&(collective, nodes, bytes)| {
            let t = serial.choose(collective, nodes, bytes).expect("pick");
            let (algorithm, segments) = (t.algorithm.to_string(), t.segments);
            let compiled = serial.compiled(collective, nodes, bytes).expect("compiled");
            Expected {
                algorithm,
                segments,
                compiled_name: compiled.algorithm.clone(),
                num_ranks: compiled.num_ranks,
                num_steps: compiled.num_steps(),
            }
        })
        .collect()
}

/// N threads hammer one shared service with interleaved query streams;
/// every answer must match the serial selector, the per-shard cache must
/// stay within capacity throughout, and — because the capacity covers the
/// whole working set — every distinct entry must compile exactly once.
#[test]
fn stress_matches_serial_and_respects_capacity() {
    let queries = Arc::new(queries());
    let expected = Arc::new(expectations(&queries));
    // Distinct (collective, nodes, slot) keys: count via the serial pick of
    // each query (compiled entries are keyed by resolved slot + rank count).
    let distinct = {
        let mut keys: Vec<(&str, usize, String)> = queries
            .iter()
            .zip(expected.iter())
            .map(|(&(c, n, _), e)| (c.name(), n, e.compiled_name.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        keys.len()
    };

    let service = Arc::new(
        ServiceSelector::from_tables(&[table()])
            .with_shards(4)
            .with_shard_capacity(distinct), // warm: no evictions, exact compile count
    );
    let threads = 8;
    let rounds = 6;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    // Every thread walks the full grid, each from its own
                    // offset, so cold entries are raced from many threads.
                    for i in 0..queries.len() {
                        let j = (i + t * 7 + round * 3) % queries.len();
                        let (collective, nodes, bytes) = queries[j];
                        let want = &expected[j];
                        let got = service
                            .choose_at(0, collective, nodes, bytes)
                            .expect("service pick");
                        assert_eq!(got.algorithm, want.algorithm);
                        assert_eq!(got.segments, want.segments);
                        let compiled = service
                            .compiled_at(0, collective, nodes, bytes)
                            .expect("service compiled");
                        assert_eq!(compiled.algorithm, want.compiled_name);
                        assert_eq!(compiled.num_ranks, want.num_ranks);
                        assert_eq!(compiled.num_steps(), want.num_steps);
                    }
                    // Capacity invariant, checked live under contention.
                    assert!(service
                        .shard_lens()
                        .iter()
                        .all(|&len| len <= service.shard_capacity()));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // Warm cache held every entry: single-flight means each distinct entry
    // compiled exactly once across all 8 threads × 6 rounds.
    assert_eq!(service.compilations(), distinct as u64);
    assert_eq!(service.cached_schedules(), distinct);
    let total = (threads * rounds * queries.len()) as u64;
    assert_eq!(service.hits() + service.misses(), total);
    assert!(service.hits() >= total - distinct as u64 * threads as u64);
}

/// Irregular grids through the serving layer: many threads hammer
/// `choose_irregular_at` across every size distribution — dist-grid hits
/// and regular-grid fallbacks alike — and every answer must stay equal to
/// the serial selector's, including the `None`s for collectives the table
/// does not carry at all.
#[test]
fn irregular_queries_stay_serial_identical_under_contention() {
    let e = |collective, dist, nodes: usize, bytes: u64, pick: &str| Entry {
        collective,
        dist,
        nodes,
        vector_bytes: bytes,
        pick: pick.into(),
        model: ScoreModel::Sync,
        time_us: 1.0,
    };
    let table = DecisionTable {
        system: "Stressbox".into(),
        entries: vec![
            // The regular grid the dist misses fall back to.
            e(Collective::Allgather, None, 8, 32, "recursive-doubling"),
            e(Collective::Allgather, None, 8, 1 << 20, "ring"),
            e(Collective::Gather, None, 8, 32, "binomial-dd"),
            // Two dist grids with their own breakpoints.
            e(
                Collective::Allgather,
                Some(SizeDist::OneHeavy),
                8,
                32,
                "ring",
            ),
            e(
                Collective::Allgather,
                Some(SizeDist::OneHeavy),
                8,
                1 << 20,
                "bine",
            ),
            e(Collective::Gather, Some(SizeDist::Linear), 8, 32, "traff"),
        ],
    };
    let mut queries = Vec::new();
    for &collective in &[
        Collective::Allgather,
        Collective::Gather,
        Collective::Scatter,
    ] {
        for dist in SizeDist::ALL {
            for &nodes in &[4usize, 8, 16, 64] {
                for &bytes in &[1u64, 32, 4096, 1 << 20, 1 << 24] {
                    queries.push((collective, dist, nodes, bytes));
                }
            }
        }
    }
    let serial = Selector::from_table(&table);
    let expected: Vec<Option<(String, usize)>> = queries
        .iter()
        .map(|&(collective, dist, nodes, bytes)| {
            serial
                .choose_irregular(collective, dist, nodes, bytes)
                .map(|t| (t.algorithm.to_string(), t.segments))
        })
        .collect();
    // Scatter has no rows at all: the fallback must be a clean None, and at
    // least one dist-grid query and one fallback query must resolve.
    assert!(expected.iter().any(|e| e.is_none()));
    assert!(expected
        .iter()
        .any(|e| matches!(e, Some((a, _)) if a == "traff")));
    assert!(expected
        .iter()
        .any(|e| matches!(e, Some((a, _)) if a == "recursive-doubling")));

    let service = Arc::new(ServiceSelector::from_tables(&[table]).with_shards(4));
    let queries = Arc::new(queries);
    let expected = Arc::new(expected);
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let queries = Arc::clone(&queries);
            let expected = Arc::clone(&expected);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..6 {
                    for i in 0..queries.len() {
                        let j = (i + t * 11 + round * 5) % queries.len();
                        let (collective, dist, nodes, bytes) = queries[j];
                        let got = service
                            .choose_irregular_at(0, collective, dist, nodes, bytes)
                            .map(|t| (t.algorithm.to_string(), t.segments));
                        assert_eq!(
                            got,
                            expected[j],
                            "{collective:?} dist={} nodes={nodes} bytes={bytes}",
                            dist.name()
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("irregular stress thread panicked");
    }
}

/// All threads release on a barrier straight into the same cold entry: one
/// compiles, the rest wait on the in-flight handle — and everyone gets the
/// same `Arc`.
#[test]
fn single_flight_dedupes_concurrent_compiles() {
    let service = Arc::new(ServiceSelector::from_tables(&[table()]).with_shards(1));
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let results = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let results = Arc::clone(&results);
            thread::spawn(move || {
                barrier.wait();
                let compiled = service
                    .compiled_at(0, Collective::Allreduce, 32, 1 << 20)
                    .expect("compiled");
                results.lock().unwrap().push(compiled);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread panicked");
    }
    let results = results.lock().unwrap();
    assert_eq!(results.len(), threads);
    assert!(
        results.iter().all(|c| Arc::ptr_eq(c, &results[0])),
        "all racers must share the one compiled schedule"
    );
    assert_eq!(
        service.compilations(),
        1,
        "the cold entry must compile exactly once, not once per racer"
    );
    // Racers that lost the race to the *completed* compile are hits; every
    // request is one or the other, and at least the leader missed.
    assert_eq!(service.hits() + service.misses(), threads as u64);
    assert!(service.misses() >= 1);
}

/// A tiny cache under contention: per-shard capacity 1 forces constant
/// eviction + recompilation, and the capacity bound and the serial-equality
/// of picks must both survive it.
#[test]
fn contended_evictions_keep_answers_serial_identical() {
    let queries = queries();
    let expected = expectations(&queries);
    let service = Arc::new(
        ServiceSelector::from_tables(&[table()])
            .with_shards(2)
            .with_shard_capacity(1),
    );
    let threads = 4;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            let pinned: Vec<(Collective, usize, u64, String, usize)> = queries
                .iter()
                .zip(expected.iter())
                .map(|(&(c, n, b), e)| (c, n, b, e.compiled_name.clone(), e.num_ranks))
                .collect();
            thread::spawn(move || {
                for round in 0..4 {
                    for i in 0..pinned.len() {
                        let (collective, nodes, bytes, ref name, num_ranks) =
                            pinned[(i + t + round) % pinned.len()];
                        let compiled = service
                            .compiled_at(0, collective, nodes, bytes)
                            .expect("compiled");
                        assert_eq!(compiled.algorithm, *name);
                        assert_eq!(compiled.num_ranks, num_ranks);
                        assert!(service.shard_lens().iter().all(|&len| len <= 1));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread panicked");
    }
    assert!(service.cached_schedules() <= 2);
    // Thrashing forces recompiles: far more compilations than distinct
    // entries, yet never more than total misses.
    assert!(service.compilations() >= 2);
    assert!(service.compilations() <= service.misses());
}

/// Regression for the unbounded follower wait: a leader stalled inside its
/// compile must not strand followers. The follower's bounded wait times
/// out, the request is answered with the binomial fallback, and once the
/// leader is released its (healthy) compile still publishes normally.
#[test]
fn stalled_leader_does_not_strand_followers() {
    // The hook blocks Allreduce compiles until the test releases them, and
    // flags when the leader has actually entered the compile (so the main
    // thread is guaranteed to register as a follower, not a leader).
    #[derive(Default)]
    struct Gate {
        state: Mutex<(bool, bool)>, // (leader entered, released)
        cv: Condvar,
    }
    let gate = Arc::new(Gate::default());
    let hook_gate = Arc::clone(&gate);
    let service = Arc::new(
        ServiceSelector::from_tables(&[table()])
            .with_policy(DegradePolicy {
                flight_timeout: Duration::from_millis(50),
                max_retries: 0,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_secs(3600),
            })
            .with_compile_hook(Arc::new(move |a: &CompileAttempt| {
                if a.collective != Collective::Allreduce {
                    return;
                }
                let mut st = hook_gate.state.lock().unwrap();
                st.0 = true;
                hook_gate.cv.notify_all();
                while !st.1 {
                    st = hook_gate.cv.wait(st).unwrap();
                }
            })),
    );

    let leader_service = Arc::clone(&service);
    let leader = thread::spawn(move || {
        leader_service
            .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
            .expect("leader result")
    });
    // Wait until the leader is provably stalled inside its compile.
    {
        let mut st = gate.state.lock().unwrap();
        while !st.0 {
            st = gate.cv.wait(st).unwrap();
        }
    }

    // The follower times out after 50 ms and degrades instead of hanging.
    let degraded = service
        .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
        .expect("follower must still get an answer");
    assert_eq!(
        degraded.algorithm,
        fallback_pick(Collective::Allreduce, 1 << 20)
    );
    assert_eq!(degraded.num_ranks, 8);
    assert_eq!(service.timeouts(), 1);
    assert!(service.fallbacks() >= 1);
    // The timed-out wait counted as a failure; at threshold 1 the breaker
    // is open, so further requests degrade immediately, without waiting.
    let degraded = service
        .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
        .expect("degraded answer");
    assert_eq!(
        degraded.algorithm,
        fallback_pick(Collective::Allreduce, 1 << 20)
    );
    assert_eq!(
        service.timeouts(),
        1,
        "no second wait once the breaker is open"
    );

    // Release the leader: its compile completes and publishes the tuned
    // pick; the stall was a delay, not a corruption.
    {
        let mut st = gate.state.lock().unwrap();
        st.1 = true;
        gate.cv.notify_all();
    }
    let led = leader.join().expect("leader thread panicked");
    assert_eq!(led.algorithm, "bine-large");
    // The published line is served to later requests (the open breaker is
    // consulted only after the cache, and a cached line is always good).
    let hit = service
        .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
        .expect("cached answer");
    assert!(Arc::ptr_eq(&led, &hit));
}

/// Satellite stress pin: 8 threads race injected compile panics against
/// warm cache hits. The cache must never publish a poisoned entry (every
/// degraded answer is exactly the binomial fallback, every healthy answer
/// the already-published line), and retry accounting must be exactly-once:
/// each failed leadership records precisely `max_retries` retries, however
/// many threads race.
#[test]
fn racing_compile_panics_never_poison_the_cache_and_count_retries_once() {
    let poisoned_calls = Arc::new(AtomicU64::new(0));
    let calls = Arc::clone(&poisoned_calls);
    let service = Arc::new(
        ServiceSelector::from_tables(&[table()])
            .with_policy(DegradePolicy {
                flight_timeout: Duration::from_secs(30),
                max_retries: 1,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
                breaker_threshold: 3,
                breaker_cooldown: Duration::from_secs(3600),
            })
            .with_compile_hook(Arc::new(move |a: &CompileAttempt| {
                if a.collective == Collective::Allreduce && a.nodes == 8 {
                    calls.fetch_add(1, Ordering::SeqCst);
                    panic!("injected compile failure");
                }
            })),
    );
    // Pre-warm the healthy entry the even threads hammer.
    let warm = service
        .compiled_at(0, Collective::Broadcast, 8, 32)
        .expect("warm");

    let threads = 8;
    let rounds = 16;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let warm = Arc::clone(&warm);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for _ in 0..rounds {
                    if t % 2 == 0 {
                        // Warm hits must keep returning the published line,
                        // races with the panicking entry notwithstanding.
                        let c = service
                            .compiled_at(0, Collective::Broadcast, 8, 32)
                            .expect("warm hit");
                        assert!(Arc::ptr_eq(&c, &warm), "healthy entry must stay cached");
                    } else {
                        // The poisoned entry always degrades to the binomial
                        // fallback — never a partially-compiled tuned pick,
                        // and never an error: availability stays 100%.
                        let c = service
                            .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
                            .expect("degraded answer");
                        assert_eq!(c.algorithm, fallback_pick(Collective::Allreduce, 1 << 20));
                        assert_eq!(c.num_ranks, 8);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // Single-flight serialises leaderships and each failure lands in the
    // breaker before followers wake, so exactly `breaker_threshold` (3)
    // leaderships ran, each trying twice (first try + one retry): 6 hook
    // calls and 3 recorded retries — exactly-once accounting under racing.
    assert_eq!(poisoned_calls.load(Ordering::SeqCst), 6);
    assert_eq!(service.retries(), 3);
    assert_eq!(service.timeouts(), 0);
    // Compilations started: the warm broadcast entry, 3 failed
    // leaderships, and the single-flight fallback compile.
    assert_eq!(service.compilations(), 5);
    // The cache holds exactly the healthy line and the fallback line — the
    // poisoned tuned pick was never published.
    assert_eq!(service.cached_schedules(), 2);
    // With the breaker open (hour-long cooldown), one more request degrades
    // without attempting any compile.
    let c = service
        .compiled_at(0, Collective::Allreduce, 8, 1 << 20)
        .expect("degraded answer");
    assert_eq!(c.algorithm, fallback_pick(Collective::Allreduce, 1 << 20));
    assert_eq!(
        poisoned_calls.load(Ordering::SeqCst),
        6,
        "breaker skips compiles"
    );
}

/// Decodes one random `u64` into a query: collective (including one absent
/// from the table, which must be `None` on both paths), a power-of-two node
/// count (every pick is buildable there) and an arbitrary byte size.
fn decode(seed: u64) -> (Collective, usize, u64) {
    let collective = [
        Collective::Allreduce,
        Collective::Broadcast,
        Collective::Alltoall, // absent from the table
    ][(seed % 3) as usize];
    let nodes = [4usize, 8, 16, 32, 64][((seed >> 2) % 5) as usize];
    let bytes = 1 + ((seed >> 5) % (1 << 22));
    (collective, nodes, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Cold cache, arbitrary query streams: the service's pick equals the
    // serial selector's for every query, and the compiled schedule is the
    // same build (name, rank count, step count).
    #[test]
    fn random_streams_resolve_bit_identical_to_serial(
        seeds in prop::collection::vec(0u64..(1 << 62), 1..24),
    ) {
        let stream: Vec<(Collective, usize, u64)> = seeds.iter().map(|&s| decode(s)).collect();
        let t = table();
        let mut serial = Selector::from_table(&t).with_cache_capacity(64);
        let service = ServiceSelector::from_tables(&[t]);
        for &(collective, nodes, bytes) in &stream {
            let want = serial.choose(collective, nodes, bytes);
            let got = service.choose_at(0, collective, nodes, bytes);
            prop_assert_eq!(got, want);
            let want_compiled = serial.compiled(collective, nodes, bytes);
            let got_compiled = service.compiled_at(0, collective, nodes, bytes);
            prop_assert_eq!(want_compiled.is_some(), got_compiled.is_some());
            if let (Some(a), Some(b)) = (want_compiled, got_compiled) {
                prop_assert_eq!(&a.algorithm, &b.algorithm);
                prop_assert_eq!(a.num_ranks, b.num_ranks);
                prop_assert_eq!(a.num_steps(), b.num_steps());
            }
        }
    }

    // Contended caches: four threads replay one random stream against a
    // shared service (small shard capacity, so eviction races happen);
    // every thread's answers must equal the serial selector's.
    #[test]
    fn contended_random_streams_stay_serial_identical(
        seeds in prop::collection::vec(0u64..(1 << 62), 1..12),
        capacity in 1usize..4,
        shards in 1usize..4,
    ) {
        // Restrict to collectives present in the table and ≤ 32 nodes so the
        // 4-way replay stays cheap in debug builds.
        let stream: Vec<(Collective, usize, u64)> = seeds
            .iter()
            .map(|&s| {
                let (c, n, b) = decode(s);
                let c = if c == Collective::Alltoall { Collective::Allreduce } else { c };
                (c, n.min(32), b)
            })
            .collect();
        let t = table();
        let mut serial = Selector::from_table(&t).with_cache_capacity(64);
        let expected: Vec<Option<(String, usize, String)>> = stream
            .iter()
            .map(|&(collective, nodes, bytes)| {
                serial.compiled(collective, nodes, bytes).map(|c| {
                    let pick = serial.choose(collective, nodes, bytes).unwrap();
                    (pick.algorithm.to_string(), pick.segments, c.algorithm.clone())
                })
            })
            .collect();
        let service = Arc::new(
            ServiceSelector::from_tables(&[t])
                .with_shards(shards)
                .with_shard_capacity(capacity),
        );
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                let stream = stream.clone();
                let expected = expected.clone();
                thread::spawn(move || {
                    for (&(collective, nodes, bytes), want) in stream.iter().zip(&expected) {
                        let got = service
                            .compiled_at(0, collective, nodes, bytes)
                            .map(|c| {
                                let pick =
                                    service.choose_at(0, collective, nodes, bytes).unwrap();
                                (pick.algorithm.to_string(), pick.segments, c.algorithm.clone())
                            });
                        assert_eq!(&got, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("contended thread panicked");
        }
        prop_assert!(service
            .shard_lens()
            .iter()
            .all(|&len| len <= capacity));
    }
}
