//! The decision-table model and its committed JSON representation.
//!
//! A [`DecisionTable`] is the tuner's output for one system: for every
//! `(collective, nodes, vector bytes)` grid point, the algorithm (and
//! pipeline segment count) that won the sweep, together with the winning
//! score and which time model produced it. Tables are committed under
//! `tuning/` at the repository root, one file per system, and reloaded at
//! runtime by [`crate::selector::Selector`].
//!
//! The serialisation is deliberately rigid line-oriented JSON — one entry
//! object per line, fixed key order — written and parsed by this module
//! without a serialisation framework (the build environment vendors no
//! serde), in the same spirit as the `BENCH_exec.json` perf baseline. The
//! strict format is what makes the CI drift gate's diff trivial and the
//! committed files merge-friendly.

use bine_sched::{
    algorithms, has_algorithm, irregular_algorithms, is_synth_name, split_segments, Collective,
    SizeDist, SynthSpec,
};

/// Which time model produced a winning score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreModel {
    /// The synchronous barrier model (`bine_net::cost`), used where the
    /// discrete-event refinement is out of budget.
    Sync,
    /// The discrete-event simulator (`bine_net::sim`), segmentation-aware.
    Des,
}

impl ScoreModel {
    /// Serialised name.
    pub fn name(&self) -> &'static str {
        match self {
            ScoreModel::Sync => "sync",
            ScoreModel::Des => "des",
        }
    }

    /// Parses the serialised name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sync" => Some(ScoreModel::Sync),
            "des" => Some(ScoreModel::Des),
            _ => None,
        }
    }
}

/// One tuned grid point: the winning `(algorithm, segments)` for a
/// `(collective, nodes, bytes)` configuration — or, for irregular
/// (v-variant) grid points, a `(collective, dist, nodes, bytes)` one.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The collective being tuned.
    pub collective: Collective,
    /// The per-rank size-distribution descriptor of an irregular (v-variant)
    /// grid point; `None` for the regular equal-counts grid. Serialised as
    /// an optional `"dist"` field, so regular entries keep their historical
    /// byte-exact line format.
    pub dist: Option<SizeDist>,
    /// Node count of the grid point.
    pub nodes: usize,
    /// Vector size in bytes of the grid point.
    pub vector_bytes: u64,
    /// The winning pick as a catalog-buildable name, segment suffix
    /// included (e.g. `"bine-large+seg8"`); `bine_sched::build` accepts it
    /// verbatim.
    pub pick: String,
    /// Which model scored the pick.
    pub model: ScoreModel,
    /// The winning score in microseconds under [`Entry::model`].
    pub time_us: f64,
}

impl Entry {
    /// The pick's base algorithm name, without the `+segS` suffix.
    pub fn algorithm(&self) -> &str {
        split_segments(&self.pick).0
    }

    /// The pick's pipeline segment count (1 = unsegmented).
    pub fn segments(&self) -> usize {
        split_segments(&self.pick).1
    }
}

/// The tuner's output for one system.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTable {
    /// Display name of the system (e.g. `"MareNostrum 5"`).
    pub system: String,
    /// Entries sorted by `(collective, nodes, vector_bytes)`.
    pub entries: Vec<Entry>,
}

/// File-name slug of a system display name: lower-cased alphanumerics only
/// (`"MareNostrum 5"` → `"marenostrum5"`).
pub fn slug(system: &str) -> String {
    system
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

impl DecisionTable {
    /// Canonical entry order, so serialisation (and the drift gate's diff)
    /// is deterministic. The regular (no-`dist`) grid of a collective sorts
    /// before its irregular grids, and entries of one `(collective, dist)`
    /// group stay contiguous — the selector index's grouping scan relies on
    /// this.
    pub fn sort(&mut self) {
        let coll_idx = |c: Collective| Collective::ALL.iter().position(|&x| x == c).unwrap();
        self.entries.sort_by_key(|e| {
            (
                coll_idx(e.collective),
                dist_idx(e.dist),
                e.nodes,
                e.vector_bytes,
            )
        });
    }

    /// Serialises the table to the committed `tuning/*.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"system\": \"{}\",\n", self.system));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let dist = match e.dist {
                Some(d) => format!(" \"dist\": \"{}\",", d.name()),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"collective\": \"{}\",{dist} \"nodes\": {}, \"bytes\": {}, \"pick\": \"{}\", \"model\": \"{}\", \"time_us\": {:.6}}}{comma}\n",
                e.collective.name(),
                e.nodes,
                e.vector_bytes,
                e.pick,
                e.model.name(),
                e.time_us,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the committed `tuning/*.json` format (the exact output of
    /// [`DecisionTable::to_json`]; anything looser is an error).
    pub fn from_json(text: &str) -> Result<DecisionTable, String> {
        let mut system: Option<String> = None;
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("\"system\":") {
                system = Some(
                    rest.trim()
                        .trim_end_matches(',')
                        .trim_matches('"')
                        .to_string(),
                );
            } else if line.starts_with("{\"collective\"") {
                entries.push(parse_entry(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
            }
        }
        let system = system.ok_or("missing \"system\" field")?;
        if entries.is_empty() {
            return Err("no entries".into());
        }
        let table = DecisionTable { system, entries };
        // Duplicate grid points would give the selector two breakpoints for
        // one (collective, nodes, bytes) key, and which pick wins would then
        // depend on sort stability — reject them here so a corrupt or
        // hand-merged table fails loudly at load instead.
        if let Some((c, d, n, b)) = table.duplicate_key() {
            return Err(format!(
                "duplicate entry for (collective: {}{}, nodes: {n}, bytes: {b}); \
                 each grid point may appear at most once",
                c.name(),
                match d {
                    Some(d) => format!(", dist: {}", d.name()),
                    None => String::new(),
                }
            ));
        }
        Ok(table)
    }

    /// The first `(collective, dist, nodes, bytes)` grid point that appears
    /// more than once, if any. A table with duplicate keys has no
    /// well-defined selection policy (which pick wins would depend on sort
    /// stability): [`DecisionTable::from_json`] rejects such tables at parse
    /// time and the selector index refuses to build from them.
    pub fn duplicate_key(&self) -> Option<(Collective, Option<SizeDist>, usize, u64)> {
        let mut keys: Vec<(Collective, Option<SizeDist>, usize, u64)> = self
            .entries
            .iter()
            .map(|e| (e.collective, e.dist, e.nodes, e.vector_bytes))
            .collect();
        keys.sort_by_key(|&(c, d, n, b)| {
            (
                Collective::ALL.iter().position(|&x| x == c).unwrap(),
                dist_idx(d),
                n,
                b,
            )
        });
        keys.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
    }

    /// The entry at an exact grid point, if present. Regular grid points
    /// have `dist == None`; irregular (v-variant) ones carry their
    /// distribution descriptor.
    pub fn at(
        &self,
        collective: Collective,
        dist: Option<SizeDist>,
        nodes: usize,
        vector_bytes: u64,
    ) -> Option<&Entry> {
        self.entries.iter().find(|e| {
            e.collective == collective
                && e.dist == dist
                && e.nodes == nodes
                && e.vector_bytes == vector_bytes
        })
    }
}

/// Canonical sort position of a dist key: the regular grid first, then the
/// irregular grids in [`SizeDist::ALL`] order.
fn dist_idx(dist: Option<SizeDist>) -> usize {
    match dist {
        None => 0,
        Some(d) => 1 + SizeDist::ALL.iter().position(|&x| x == d).unwrap(),
    }
}

/// Extracts the value of `"key": ...` from a single-line entry object. The
/// value ends at the next `,` or closing `}`; quoted values keep everything
/// between the quotes (pick names never contain quotes or commas).
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat).ok_or(format!("missing key {key}"))? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"').ok_or(format!("unterminated {key}"))?;
        Ok(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).ok_or(format!("unterminated {key}"))?;
        Ok(rest[..end].trim())
    }
}

fn parse_entry(line: &str) -> Result<Entry, String> {
    let collective = field(line, "collective")?;
    let collective =
        Collective::from_name(collective).ok_or(format!("unknown collective {collective}"))?;
    // The dist field is optional: regular grid points omit it entirely.
    let dist = match field(line, "dist") {
        Ok(name) => Some(SizeDist::from_name(name).ok_or(format!("unknown dist {name}"))?),
        Err(_) => None,
    };
    let nodes: usize = field(line, "nodes")?
        .parse()
        .map_err(|e| format!("bad nodes: {e}"))?;
    let vector_bytes: u64 = field(line, "bytes")?
        .parse()
        .map_err(|e| format!("bad bytes: {e}"))?;
    let pick = field(line, "pick")?.to_string();
    let model = field(line, "model")?;
    let model = ScoreModel::from_name(model).ok_or(format!("unknown model {model}"))?;
    let time_us: f64 = field(line, "time_us")?
        .parse()
        .map_err(|e| format!("bad time_us: {e}"))?;
    // Value sanity, not just syntax: a NaN score would poison every
    // comparison the selector and the adaptive layer run against it, a
    // negative one would always win a sweep, and a zero node count can
    // never resolve a rank. The tuner never emits these, so any of them
    // means a corrupt or hand-edited table — fail loudly at load.
    if time_us.is_nan() {
        return Err("time_us is NaN; scores must be comparable".into());
    }
    if time_us < 0.0 {
        return Err(format!(
            "time_us is negative ({time_us}); scores are durations"
        ));
    }
    if nodes == 0 {
        return Err("nodes is 0; a grid point needs at least one rank".into());
    }
    // The pick must name something the serving layer can actually build:
    // a catalog algorithm of this collective, a parseable synthesized name
    // it supports, or (for dist-keyed rows) an irregular v-variant. A typo
    // here would otherwise surface only as a panic at first request.
    let base = split_segments(&pick).0;
    let known = if is_synth_name(base) {
        dist.is_none() && SynthSpec::parse(base).is_some_and(|s| s.supports(collective))
    } else {
        // Dist-keyed rows may also name a v-variant on top of the regular
        // catalog (an irregular grid can still pick a regular algorithm
        // when the counts happen to be equal).
        has_algorithm(collective, base)
            || (dist.is_some()
                && irregular_algorithms(collective)
                    .iter()
                    .any(|a| a.name() == base))
    };
    if !known {
        let mut available: Vec<String> = algorithms(collective)
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        if dist.is_some() {
            available.extend(
                irregular_algorithms(collective)
                    .iter()
                    .map(|a| format!("{} (v-variant)", a.name())),
            );
        } else {
            available.push("synth:forestcoll:k=K".to_string());
            available.push("synth:multilevel:tiers=T".to_string());
        }
        return Err(format!(
            "unknown pick \"{pick}\" for {}; available: {}",
            collective.name(),
            available.join(", ")
        ));
    }
    Ok(Entry {
        collective,
        dist,
        nodes,
        vector_bytes,
        pick,
        model,
        time_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionTable {
        DecisionTable {
            system: "MareNostrum 5".into(),
            entries: vec![
                Entry {
                    collective: Collective::Allreduce,
                    dist: None,
                    nodes: 16,
                    vector_bytes: 32,
                    pick: "recursive-doubling".into(),
                    model: ScoreModel::Sync,
                    time_us: 12.25,
                },
                Entry {
                    collective: Collective::Allreduce,
                    dist: None,
                    nodes: 16,
                    vector_bytes: 64 << 20,
                    pick: "bine-large+seg8".into(),
                    model: ScoreModel::Des,
                    time_us: 31337.5,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let table = sample();
        let parsed = DecisionTable::from_json(&table.to_json()).unwrap();
        assert_eq!(parsed, table);
    }

    #[test]
    fn entries_expose_base_name_and_segments() {
        let table = sample();
        assert_eq!(table.entries[0].algorithm(), "recursive-doubling");
        assert_eq!(table.entries[0].segments(), 1);
        assert_eq!(table.entries[1].algorithm(), "bine-large");
        assert_eq!(table.entries[1].segments(), 8);
    }

    #[test]
    fn sort_orders_by_collective_then_nodes_then_bytes() {
        let mut table = sample();
        table.entries.reverse();
        table.entries.push(Entry {
            collective: Collective::Broadcast,
            dist: None,
            nodes: 4,
            vector_bytes: 32,
            pick: "bine-tree".into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        });
        table.sort();
        // Broadcast precedes Allreduce in Collective::ALL.
        assert_eq!(table.entries[0].collective, Collective::Broadcast);
        assert_eq!(table.entries[1].vector_bytes, 32);
        assert_eq!(table.entries[2].vector_bytes, 64 << 20);
    }

    #[test]
    fn irregular_entries_round_trip_and_keep_regular_lines_stable() {
        let regular_json = sample().to_json();
        let mut table = sample();
        table.entries.push(Entry {
            collective: Collective::Allreduce,
            dist: Some(SizeDist::Linear),
            nodes: 16,
            vector_bytes: 32, // same (nodes, bytes) as entry 0: distinct key by dist
            pick: "ring".into(),
            model: ScoreModel::Sync,
            time_us: 3.5,
        });
        let json = table.to_json();
        // Regular entry lines are byte-identical with or without irregular
        // rows in the table (older committed files stay parseable and
        // diff-stable).
        for line in regular_json.lines().filter(|l| l.contains("\"pick\"")) {
            assert!(json.contains(line), "regular line changed: {line}");
        }
        assert!(json.contains("\"dist\": \"linear\""), "{json}");
        let parsed = DecisionTable::from_json(&json).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(
            parsed.at(Collective::Allreduce, Some(SizeDist::Linear), 16, 32),
            Some(&table.entries[2])
        );
        // The dist-keyed row never shadows the regular grid point.
        assert_eq!(
            parsed.at(Collective::Allreduce, None, 16, 32).unwrap().pick,
            "recursive-doubling"
        );
    }

    #[test]
    fn sort_places_irregular_grids_after_the_regular_grid() {
        let mut table = sample();
        table.entries.insert(
            0,
            Entry {
                collective: Collective::Allreduce,
                dist: Some(SizeDist::Uniform),
                nodes: 4,
                vector_bytes: 32,
                pick: "ring".into(),
                model: ScoreModel::Sync,
                time_us: 1.0,
            },
        );
        table.sort();
        assert_eq!(table.entries[0].dist, None);
        assert_eq!(table.entries[1].dist, None);
        assert_eq!(table.entries[2].dist, Some(SizeDist::Uniform));
    }

    #[test]
    fn duplicate_detection_is_dist_aware() {
        // Same (collective, nodes, bytes) under two dists: not a duplicate.
        let mut table = sample();
        for dist in [Some(SizeDist::Linear), Some(SizeDist::OneHeavy)] {
            table.entries.push(Entry {
                collective: Collective::Allreduce,
                dist,
                nodes: 16,
                vector_bytes: 32,
                pick: "ring".into(),
                model: ScoreModel::Sync,
                time_us: 1.0,
            });
        }
        assert!(table.duplicate_key().is_none());
        // The same dist twice is one, and the error names the dist.
        let dup = table.entries.last().unwrap().clone();
        table.entries.push(dup);
        assert!(table.duplicate_key().is_some());
        let err = DecisionTable::from_json(&table.to_json()).unwrap_err();
        assert!(err.contains("dist: one-heavy"), "{err}");
    }

    #[test]
    fn slugs_drop_spaces_and_case() {
        assert_eq!(slug("MareNostrum 5"), "marenostrum5");
        assert_eq!(slug("LUMI"), "lumi");
        assert_eq!(slug("Leonardo"), "leonardo");
        assert_eq!(slug("Fugaku"), "fugaku");
    }

    #[test]
    fn malformed_tables_are_rejected() {
        assert!(DecisionTable::from_json("{}").is_err());
        assert!(
            DecisionTable::from_json("{\n  \"system\": \"x\",\n  \"entries\": [\n  ]\n}").is_err()
        );
        let bad = sample().to_json().replace("allreduce", "allred");
        assert!(DecisionTable::from_json(&bad).is_err());
    }

    #[test]
    fn corrupt_scores_and_rank_counts_are_rejected_with_line_numbers() {
        // A NaN score: every comparison against it is false, so the
        // selector's floor lookups and the adaptive divergence test would
        // silently misbehave. Entry objects start on line 4 of the format.
        let bad = sample().to_json().replace("12.250000", "NaN");
        let err = DecisionTable::from_json(&bad).unwrap_err();
        assert!(err.contains("NaN"), "{err}");
        assert!(err.contains("line 4"), "{err}");

        // A negative score would win every sweep it appears in.
        let bad = sample().to_json().replace("31337.500000", "-1.5");
        let err = DecisionTable::from_json(&bad).unwrap_err();
        assert!(err.contains("negative"), "{err}");
        assert!(err.contains("line 5"), "{err}");

        // Zero nodes can never resolve a rank.
        let bad = sample().to_json().replace("\"nodes\": 16", "\"nodes\": 0");
        let err = DecisionTable::from_json(&bad).unwrap_err();
        assert!(err.contains("nodes is 0"), "{err}");
        assert!(err.contains("line 4"), "{err}");

        // Infinity stays loadable: the tuner emits it for unbuildable
        // picks it still has to rank, and it compares correctly.
        let inf = sample().to_json().replace("12.250000", "inf");
        assert!(DecisionTable::from_json(&inf).is_ok());
    }

    #[test]
    fn duplicate_grid_points_are_rejected_with_the_offending_key() {
        // Regression: duplicates used to parse fine and silently make the
        // resolved pick depend on sort stability.
        let mut table = sample();
        let mut dup = table.entries[0].clone();
        dup.pick = "ring".into(); // same key, conflicting pick
        table.entries.push(dup);
        let err = DecisionTable::from_json(&table.to_json()).unwrap_err();
        assert!(err.contains("duplicate entry"), "{err}");
        assert!(
            err.contains("allreduce") && err.contains("16") && err.contains("32"),
            "{err}"
        );
        // Non-adjacent duplicates (different sort position in the file) are
        // caught too: detection is over canonically sorted keys.
        let mut table = sample();
        let dup = table.entries[1].clone();
        table.entries.insert(0, dup);
        assert!(DecisionTable::from_json(&table.to_json())
            .unwrap_err()
            .contains("duplicate entry"));
    }

    #[test]
    fn unknown_picks_are_rejected_with_the_available_names() {
        // A typo'd catalog name fails at load, names the line, and lists
        // what would have been accepted.
        let bad = sample()
            .to_json()
            .replace("recursive-doubling", "recursiv-doubling");
        let err = DecisionTable::from_json(&bad).unwrap_err();
        assert!(err.contains("unknown pick \"recursiv-doubling\""), "{err}");
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("recursive-doubling"), "{err}");
        assert!(err.contains("synth:forestcoll"), "{err}");

        // A valid name for the *wrong* collective is just as unbuildable.
        let bad = sample().to_json().replace(
            "\"pick\": \"recursive-doubling\"",
            "\"pick\": \"bine-tree\"",
        );
        assert!(DecisionTable::from_json(&bad)
            .unwrap_err()
            .contains("unknown pick"));

        // Segment suffixes are split off before the name check, malformed
        // ones (leading zero) are not and fail as a whole.
        let ok = sample().to_json().replace(
            "\"pick\": \"recursive-doubling\"",
            "\"pick\": \"recursive-doubling+seg4\"",
        );
        assert!(DecisionTable::from_json(&ok).is_ok());
        let bad = sample().to_json().replace(
            "\"pick\": \"recursive-doubling\"",
            "\"pick\": \"recursive-doubling+seg04\"",
        );
        assert!(DecisionTable::from_json(&bad)
            .unwrap_err()
            .contains("unknown pick"));
    }

    #[test]
    fn synthesized_picks_parse_when_canonical_and_supported() {
        let base = sample().to_json();
        for (pick, ok) in [
            ("synth:multilevel:tiers=2", true),
            ("synth:multilevel:tiers=2+seg8", true),
            ("synth:multilevel:tiers=0", false),  // out of range
            ("synth:multilevel:tiers=02", false), // non-canonical
            ("synth:forestcoll:k=2", false),      // broadcast-only, row is allreduce
            ("synth:unknown:x=1", false),
        ] {
            let json = base.replace(
                "\"pick\": \"recursive-doubling\"",
                &format!("\"pick\": \"{pick}\""),
            );
            assert_eq!(DecisionTable::from_json(&json).is_ok(), ok, "{pick}");
        }
    }

    #[test]
    fn irregular_picks_validate_against_the_v_variant_names() {
        let mut table = sample();
        table.entries.push(Entry {
            collective: Collective::Gather,
            dist: Some(SizeDist::Linear),
            nodes: 16,
            vector_bytes: 32,
            pick: "traff".into(),
            model: ScoreModel::Sync,
            time_us: 3.5,
        });
        let json = table.to_json();
        assert!(DecisionTable::from_json(&json).is_ok(), "{json}");
        let bad = json.replace("\"pick\": \"traff\"", "\"pick\": \"no-such-v\"");
        let err = DecisionTable::from_json(&bad).unwrap_err();
        assert!(err.contains("unknown pick"), "{err}");
        assert!(
            err.contains("traff (v-variant)"),
            "should list v-variants: {err}"
        );
        // The v-variant name is only valid on dist-keyed rows.
        let bad = sample()
            .to_json()
            .replace("\"pick\": \"recursive-doubling\"", "\"pick\": \"traff\"");
        assert!(DecisionTable::from_json(&bad)
            .unwrap_err()
            .contains("unknown pick"));
    }

    #[test]
    fn exact_lookup_finds_grid_points() {
        let table = sample();
        assert!(table.at(Collective::Allreduce, None, 16, 32).is_some());
        assert!(table.at(Collective::Allreduce, None, 16, 33).is_none());
        assert!(table.at(Collective::Broadcast, None, 16, 32).is_none());
    }
}
