//! The runtime selection API: O(log n) breakpoint lookup over a loaded
//! decision table, plus a small LRU of compiled schedules so repeated
//! invocations of the tuned pick pay the schedule build + compile cost once.
//!
//! The lookup structure itself — [`SelectorIndex`] — is immutable after
//! construction and shared behind an `Arc`, so the single-threaded
//! [`Selector`] and the concurrent [`crate::service::ServiceSelector`]
//! resolve every query through literally the same code and data: a pick can
//! never differ between the serial and the serving path.

use std::ffi::OsString;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bine_sched::{Collective, CompiledSchedule, ProviderSet, SizeDist};

use crate::table::{slug, DecisionTable, Entry};

/// The tuned pick for one `(collective, nodes, bytes)` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuned<'a> {
    /// Base algorithm name (no `+segS` suffix), buildable via
    /// [`bine_sched::build`] together with [`Tuned::segments`].
    pub algorithm: &'a str,
    /// Pipeline segment count (1 = unsegmented).
    pub segments: usize,
}

/// One loaded entry: the owned pick name plus the split the selector hands
/// out without allocating, and the committed score metadata the adaptive
/// layer (see [`crate::adapt`]) compares observed timings against.
pub(crate) struct Slot {
    /// Full pick name as committed (e.g. `"bine-large+seg8"`).
    pub(crate) pick: String,
    /// Length of the base-name prefix of `pick`.
    pub(crate) base_len: usize,
    /// Pipeline segment count.
    pub(crate) segments: usize,
    /// The tuned grid point's vector size — the size candidates are
    /// re-scored at when this slot's observed cost diverges.
    pub(crate) vector_bytes: u64,
    /// The committed modelled cost of `pick` at the grid point.
    pub(crate) time_us: f64,
}

/// Per-`(collective, dist)` lookup index: ascending node breakpoints, each
/// with its ascending `(bytes, slot)` breakpoints. The regular grid of a
/// collective lives under `dist == None`; irregular (v-variant) grids under
/// their [`SizeDist`] descriptor.
type NodeIndex = Vec<(usize, Vec<(u64, u32)>)>;

/// Default capacity of the compiled-schedule LRU: enough for every vector
/// size of one sweep at a fixed node count without eviction.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// The immutable pre-indexed form of one system's decision table: slots in
/// canonical order plus the two-level breakpoint index. Never mutated after
/// construction, so it is freely shared (`Arc`) between threads.
pub struct SelectorIndex {
    system: String,
    slots: Vec<Slot>,
    index: Vec<((Collective, Option<SizeDist>), NodeIndex)>,
    providers: ProviderSet,
}

impl SelectorIndex {
    /// Builds the index from an in-memory decision table.
    ///
    /// # Panics
    ///
    /// On duplicate `(collective, nodes, bytes)` grid points: a table with
    /// duplicate keys has no well-defined policy (the resolved pick would
    /// depend on sort stability). Tables loaded through
    /// [`DecisionTable::from_json`] are already rejected there with an
    /// `Err`; this guards tables built programmatically.
    pub fn from_table(table: &DecisionTable) -> SelectorIndex {
        if let Some((c, _, n, b)) = table.duplicate_key() {
            panic!(
                "decision table {:?} has duplicate entries for \
                 (collective: {}, nodes: {n}, bytes: {b})",
                table.system,
                c.name()
            );
        }
        let mut slots = Vec::with_capacity(table.entries.len());
        let mut index: Vec<((Collective, Option<SizeDist>), NodeIndex)> = Vec::new();
        // Entries are kept in canonical order, so grouping is a linear scan.
        let mut sorted = table.clone();
        sorted.sort();
        for e in &sorted.entries {
            let slot = push_slot(&mut slots, e);
            let key = (e.collective, e.dist);
            let coll = match index.iter_mut().find(|(k, _)| *k == key) {
                Some((_, ni)) => ni,
                None => {
                    index.push((key, Vec::new()));
                    &mut index.last_mut().unwrap().1
                }
            };
            match coll.last_mut() {
                Some((nodes, sizes)) if *nodes == e.nodes => sizes.push((e.vector_bytes, slot)),
                _ => coll.push((e.nodes, vec![(e.vector_bytes, slot)])),
            }
        }
        let providers = system_providers(&sorted.system);
        SelectorIndex {
            system: sorted.system,
            slots,
            index,
            providers,
        }
    }

    /// The system this index was tuned for.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The provider set every schedule build of this index routes through:
    /// the static catalog plus, for systems with a known topology model,
    /// the topology-aware synthesizers fed by
    /// [`bine_net::view::system_view`]. Committed `synth:` picks rebuild
    /// through the same pinned view derivation the tuner scored them with.
    pub fn providers(&self) -> &ProviderSet {
        &self.providers
    }

    /// The tuned `(algorithm, segments)` for a configuration, by floor
    /// breakpoint lookup: the entry at the largest tuned node count ≤
    /// `nodes` and, within it, the largest tuned vector size ≤ `bytes`
    /// (clamped to the smallest breakpoint below the grid). Two binary
    /// searches, no allocation. `None` only when the table has no entries
    /// for `collective`.
    pub fn choose(&self, collective: Collective, nodes: usize, bytes: u64) -> Option<Tuned<'_>> {
        self.tuned(self.slot_index(collective, nodes, bytes)?)
    }

    /// The tuned `(algorithm, segments)` for an irregular (v-variant)
    /// configuration, resolved against the grid tuned for `dist`. Falls
    /// back to the regular (equal-counts) grid when the table carries no
    /// entries for that distribution — a selector over an older table keeps
    /// answering rather than returning `None` for every irregular query.
    ///
    /// On a dist-grid hit the returned pick names an
    /// [`bine_sched::IrregularAlg`], buildable via
    /// [`bine_sched::build_irregular`] with the caller's real counts; on
    /// regular-grid fallback it names a catalog algorithm (the equal-counts
    /// pick), which the caller can run as-is when the imbalance is mild or
    /// map onto its nearest v-variant.
    pub fn choose_irregular(
        &self,
        collective: Collective,
        dist: SizeDist,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        match self.slot_index_for(collective, Some(dist), nodes, bytes) {
            Some(slot) => self.tuned(slot),
            None => self.choose(collective, nodes, bytes),
        }
    }

    fn tuned(&self, slot_idx: u32) -> Option<Tuned<'_>> {
        let slot = &self.slots[slot_idx as usize];
        Some(Tuned {
            algorithm: &slot.pick[..slot.base_len],
            segments: slot.segments,
        })
    }

    /// The floor-breakpoint lookup shared by every `choose`/`compiled`
    /// entry point (serial and concurrent): all of them must always resolve
    /// a query to the same table entry. Compiled paths resolve against the
    /// regular grid (irregular schedules need real per-rank counts, which a
    /// `(nodes, bytes)` key cannot carry).
    pub(crate) fn slot_index(
        &self,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<u32> {
        self.slot_index_for(collective, None, nodes, bytes)
    }

    fn slot_index_for(
        &self,
        collective: Collective,
        dist: Option<SizeDist>,
        nodes: usize,
        bytes: u64,
    ) -> Option<u32> {
        let (_, node_index) = self.index.iter().find(|(k, _)| *k == (collective, dist))?;
        let ni = floor_index(node_index, |&(n, _)| n <= nodes);
        let (_, sizes) = &node_index[ni];
        let si = floor_index(sizes, |&(b, _)| b <= bytes);
        Some(sizes[si].1)
    }

    /// Builds and compiles the schedule of slot `slot_idx` at `nodes` ranks
    /// (rooted collectives use root 0, the root used throughout the harness
    /// and the tuning sweeps). `None` if the committed pick is not
    /// buildable at this rank count.
    pub(crate) fn compile_slot(
        &self,
        collective: Collective,
        nodes: usize,
        slot_idx: u32,
    ) -> Option<Arc<CompiledSchedule>> {
        let slot = &self.slots[slot_idx as usize];
        let sched = self.providers.build(collective, &slot.pick, nodes, 0)?;
        Some(Arc::new(sched.compile()))
    }

    /// The loaded slot behind `slot_idx` — the adaptive layer reads the
    /// committed pick and its modelled score from here.
    pub(crate) fn slot(&self, slot_idx: u32) -> &Slot {
        &self.slots[slot_idx as usize]
    }
}

/// Runtime algorithm selector over one system's decision table.
///
/// [`Selector::choose`] is allocation-free: the table is pre-indexed at
/// load time and lookups are two binary searches returning borrowed names
/// (covered by an allocation-counting test). [`Selector::compiled`]
/// additionally builds + compiles the picked schedule, memoised in an LRU.
///
/// The selector is single-threaded (`compiled` takes `&mut self`); for a
/// shared, concurrent serving front-end over the same index see
/// [`crate::service::ServiceSelector`].
pub struct Selector {
    index: Arc<SelectorIndex>,
    cache: Vec<CacheLine>,
    cache_capacity: usize,
    clock: u64,
}

struct CacheLine {
    key: (Collective, usize, u32),
    compiled: Arc<CompiledSchedule>,
    last_used: u64,
}

impl Selector {
    /// Builds a selector from an in-memory decision table.
    pub fn from_table(table: &DecisionTable) -> Selector {
        Self::from_index(Arc::new(SelectorIndex::from_table(table)))
    }

    /// Builds a selector over an existing shared index.
    pub fn from_index(index: Arc<SelectorIndex>) -> Selector {
        Selector {
            index,
            cache: Vec::new(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            clock: 0,
        }
    }

    /// Sets the compiled-schedule LRU capacity. A capacity of 0 is clamped
    /// to 1 (a cache that can hold nothing cannot satisfy `compiled`, and
    /// the eviction scan requires at least one line to pick a victim from).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Selector {
        self.cache_capacity = capacity.max(1);
        // Shrinking below the current population evicts the oldest lines
        // immediately so the invariant `len ≤ capacity` holds from here on.
        while self.cache.len() > self.cache_capacity {
            if let Some(evict) = self.lru_victim() {
                self.cache.swap_remove(evict);
            }
        }
        self
    }

    /// Loads the committed decision table for `system` (display name or
    /// slug, e.g. `"MareNostrum 5"` or `"marenostrum5"`) from the tuning
    /// directory resolved by [`default_tuning_dir`].
    ///
    /// An unknown system is an `Err` listing every system that *does* have
    /// a committed table in the resolved directory, so a typo'd name says
    /// what it could have been instead of a bare file-not-found.
    pub fn load(system: &str) -> Result<Selector, String> {
        let dir = default_tuning_dir()?;
        let path = dir.join(format!("{}.json", slug(system)));
        if !path.is_file() {
            let available = available_systems(&dir);
            let available = if available.is_empty() {
                "none".to_string()
            } else {
                available.join(", ")
            };
            return Err(format!(
                "no decision table for system {system:?} in {}; available systems: {available}",
                dir.display()
            ));
        }
        Self::load_from(&path)
    }

    /// Loads a decision table from an explicit path.
    pub fn load_from(path: &Path) -> Result<Selector, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read decision table {}: {e}", path.display()))?;
        let table = DecisionTable::from_json(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        Ok(Self::from_table(&table))
    }

    /// The system this selector was tuned for.
    pub fn system(&self) -> &str {
        self.index.system()
    }

    /// The shared immutable index behind this selector.
    pub fn index(&self) -> &Arc<SelectorIndex> {
        &self.index
    }

    /// The tuned `(algorithm, segments)` for a configuration; see
    /// [`SelectorIndex::choose`] for the floor-breakpoint semantics.
    pub fn choose(&self, collective: Collective, nodes: usize, bytes: u64) -> Option<Tuned<'_>> {
        self.index.choose(collective, nodes, bytes)
    }

    /// The tuned pick for an irregular (v-variant) configuration; see
    /// [`SelectorIndex::choose_irregular`] for the dist-grid and fallback
    /// semantics.
    pub fn choose_irregular(
        &self,
        collective: Collective,
        dist: SizeDist,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.index.choose_irregular(collective, dist, nodes, bytes)
    }

    /// The compiled schedule of the tuned pick at `nodes` ranks, built on
    /// demand and memoised in a `DEFAULT_CACHE_CAPACITY`-entry LRU (keyed
    /// by the resolved entry and the actual rank count, so off-grid node
    /// counts get their own compilation).
    ///
    /// Rooted collectives (broadcast in the committed tables) are built
    /// with **root 0** — the root used throughout the harness and the
    /// tuning sweeps. For a different root, take [`Selector::choose`]'s
    /// pick and build the schedule via `bine_sched::build` directly.
    pub fn compiled(
        &mut self,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        let slot_idx = self.index.slot_index(collective, nodes, bytes)?;

        self.clock += 1;
        let clock = self.clock;
        let key = (collective, nodes, slot_idx);
        if let Some(line) = self.cache.iter_mut().find(|l| l.key == key) {
            line.last_used = clock;
            return Some(line.compiled.clone());
        }
        let compiled = self.index.compile_slot(collective, nodes, slot_idx)?;
        while self.cache.len() >= self.cache_capacity {
            match self.lru_victim() {
                Some(evict) => {
                    self.cache.swap_remove(evict);
                }
                None => break,
            }
        }
        self.cache.push(CacheLine {
            key,
            compiled: compiled.clone(),
            last_used: clock,
        });
        Some(compiled)
    }

    /// Index of the least-recently-used cache line, `None` on an empty
    /// cache (so eviction can never panic, whatever the capacity).
    fn lru_victim(&self) -> Option<usize> {
        self.cache
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_used)
            .map(|(i, _)| i)
    }

    /// Number of compiled schedules currently cached.
    pub fn cached_schedules(&self) -> usize {
        self.cache.len()
    }
}

/// The provider set for a system display name or slug: catalog plus the
/// synthesizers when the slug names a modelled topology
/// ([`bine_net::view::system_topology`]), catalog only otherwise. A
/// synthesized pick in a table for an unmodelled system simply fails to
/// build (`None`), exactly like any other unbuildable pick.
pub fn system_providers(system: &str) -> ProviderSet {
    let slug = slug(system);
    if bine_net::view::system_topology(&slug, 2).is_none() {
        return ProviderSet::catalog_only();
    }
    ProviderSet::with_synth(Arc::new(move |nodes| {
        bine_net::view::system_view(&slug, nodes)
    }))
}

fn push_slot(slots: &mut Vec<Slot>, e: &Entry) -> u32 {
    let base_len = e.algorithm().len();
    slots.push(Slot {
        pick: e.pick.clone(),
        base_len,
        segments: e.segments(),
        vector_bytes: e.vector_bytes,
        time_us: e.time_us,
    });
    (slots.len() - 1) as u32
}

/// Index of the last element satisfying `below` (floor semantics), clamped
/// to the first element when the query is below every breakpoint.
fn floor_index<T>(sorted: &[T], below: impl FnMut(&T) -> bool) -> usize {
    sorted.partition_point(below).saturating_sub(1)
}

/// Slugs of the systems with a committed decision table (`*.json`) under
/// `dir`, sorted — the "did you mean" list of [`Selector::load`]'s
/// unknown-system error. An unreadable directory yields an empty list.
pub fn available_systems(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .collect();
    names.sort();
    names
}

/// Resolves the `tuning/` directory holding the committed decision tables.
///
/// Probes, in order, and returns the first that exists:
///
/// 1. the `BINE_TUNING_DIR` environment variable (when set and non-empty —
///    and authoritative: pointing it at a directory that does not exist is
///    an error, never a silent fall-through to the other probes),
/// 2. a `tuning/` directory next to the running executable (so deployed
///    binaries find tables shipped alongside them),
/// 3. the repository checkout this binary was built from (two levels above
///    this crate's manifest — a compile-time path, only meaningful on the
///    build machine).
///
/// When the resolution fails the error lists every probed location, so a
/// mis-deployed binary says exactly where it looked.
pub fn default_tuning_dir() -> Result<PathBuf, String> {
    resolve_tuning_dir(
        std::env::var_os("BINE_TUNING_DIR"),
        std::env::current_exe()
            .ok()
            .and_then(|exe| exe.parent().map(Path::to_path_buf)),
    )
}

/// The probe order behind [`default_tuning_dir`], with the process-global
/// inputs (environment, executable path) passed in so it is unit-testable
/// without mutating the test process's environment.
fn resolve_tuning_dir(
    env_dir: Option<OsString>,
    exe_dir: Option<PathBuf>,
) -> Result<PathBuf, String> {
    let mut probed: Vec<String> = Vec::new();
    if let Some(dir) = env_dir.filter(|d| !d.is_empty()) {
        let dir = PathBuf::from(dir);
        if dir.is_dir() {
            return Ok(dir);
        }
        // Explicitly configured but wrong: error out rather than silently
        // serving tables from somewhere the operator did not point at.
        return Err(format!(
            "BINE_TUNING_DIR is set to {} but that is not a directory; \
             create it or unset the variable",
            dir.display()
        ));
    }
    if let Some(exe_dir) = exe_dir {
        let dir = exe_dir.join("tuning");
        if dir.is_dir() {
            return Ok(dir);
        }
        probed.push(format!("{} (next to the executable)", dir.display()));
    }
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tuning");
    if dir.is_dir() {
        return Ok(dir);
    }
    probed.push(format!("{} (build-machine checkout)", dir.display()));
    Err(format!(
        "no tuning/ directory with committed decision tables found; probed: {}. \
         Set BINE_TUNING_DIR, place a tuning/ directory next to the executable, \
         or load an explicit path with Selector::load_from",
        probed.join(", ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, ScoreModel};

    fn table() -> DecisionTable {
        let e = |nodes: usize, bytes: u64, pick: &str| Entry {
            collective: Collective::Allreduce,
            dist: None,
            nodes,
            vector_bytes: bytes,
            pick: pick.into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        };
        DecisionTable {
            system: "Testbox".into(),
            entries: vec![
                e(16, 32, "recursive-doubling"),
                e(16, 1 << 20, "bine-large"),
                e(64, 32, "recursive-doubling"),
                e(64, 1 << 20, "bine-large+seg8"),
            ],
        }
    }

    #[test]
    fn choose_uses_floor_breakpoints_and_clamps() {
        let s = Selector::from_table(&table());
        // Exact grid points.
        let t = s.choose(Collective::Allreduce, 16, 32).unwrap();
        assert_eq!((t.algorithm, t.segments), ("recursive-doubling", 1));
        let t = s.choose(Collective::Allreduce, 64, 1 << 20).unwrap();
        assert_eq!((t.algorithm, t.segments), ("bine-large", 8));
        // Off-grid: floor on both axes (40 → the 16-node row, 4 MiB → the
        // 1 MiB breakpoint).
        let t = s.choose(Collective::Allreduce, 40, 1 << 22).unwrap();
        assert_eq!((t.algorithm, t.segments), ("bine-large", 1));
        // Below the grid: clamped to the smallest breakpoints.
        let t = s.choose(Collective::Allreduce, 4, 1).unwrap();
        assert_eq!((t.algorithm, t.segments), ("recursive-doubling", 1));
        // Unknown collective: None.
        assert!(s.choose(Collective::Broadcast, 16, 32).is_none());
    }

    #[test]
    fn irregular_queries_hit_the_dist_grid_and_fall_back_to_regular() {
        let mut t = table();
        t.entries[0].collective = Collective::Allgather; // regular fallback row
        t.entries[1].collective = Collective::Allgather;
        t.entries.push(Entry {
            collective: Collective::Allgather,
            dist: Some(SizeDist::OneHeavy),
            nodes: 16,
            vector_bytes: 32,
            pick: "ring".into(),
            model: ScoreModel::Sync,
            time_us: 2.0,
        });
        let s = Selector::from_table(&t);
        // The dist grid answers dist-keyed queries (floor semantics apply).
        let i = s
            .choose_irregular(Collective::Allgather, SizeDist::OneHeavy, 64, 1 << 20)
            .unwrap();
        assert_eq!((i.algorithm, i.segments), ("ring", 1));
        // A distribution the table never tuned falls back to the regular
        // grid instead of answering None.
        let f = s
            .choose_irregular(Collective::Allgather, SizeDist::Linear, 16, 32)
            .unwrap();
        assert_eq!((f.algorithm, f.segments), ("recursive-doubling", 1));
        // The regular choose path never sees the dist rows.
        let r = s.choose(Collective::Allgather, 16, 32).unwrap();
        assert_eq!(r.algorithm, "recursive-doubling");
    }

    #[test]
    fn compiled_schedules_are_cached_and_lru_evicted() {
        let mut s = Selector::from_table(&table());
        let a = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        let b = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(s.cached_schedules(), 1);
        // Distinct node counts compile separately even for one entry.
        let c = s.compiled(Collective::Allreduce, 32, 32).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.num_ranks, 32);
        assert_eq!(s.cached_schedules(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_line() {
        let mut s = Selector::from_table(&table()).with_cache_capacity(2);
        s.compiled(Collective::Allreduce, 16, 32).unwrap();
        s.compiled(Collective::Allreduce, 32, 32).unwrap();
        // Touch the first line so the second is the LRU victim.
        s.compiled(Collective::Allreduce, 16, 32).unwrap();
        s.compiled(Collective::Allreduce, 64, 32).unwrap();
        assert_eq!(s.cached_schedules(), 2);
        assert!(s
            .cache
            .iter()
            .any(|l| l.key == (Collective::Allreduce, 16, 0)));
        assert!(!s.cache.iter().any(|l| l.key.1 == 32));
    }

    #[test]
    fn zero_capacity_is_clamped_and_never_panics() {
        // Regression: the old eviction scan `expect("capacity > 0")`
        // panicked on the very first insert at capacity 0.
        let mut s = Selector::from_table(&table()).with_cache_capacity(0);
        let a = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        assert_eq!(s.cached_schedules(), 1, "capacity 0 is clamped to 1");
        let b = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn capacity_one_caches_exactly_the_last_entry() {
        let mut s = Selector::from_table(&table()).with_cache_capacity(1);
        let a = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        let b = s.compiled(Collective::Allreduce, 32, 32).unwrap();
        assert_eq!(s.cached_schedules(), 1);
        assert!(!Arc::ptr_eq(&a, &b));
        // Re-querying the evicted entry recompiles rather than panicking.
        let c = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        assert_eq!(s.cached_schedules(), 1);
        assert!(!Arc::ptr_eq(&a, &c), "the line was evicted and rebuilt");
    }

    #[test]
    fn shrinking_the_capacity_evicts_down_to_the_new_bound() {
        let mut s = Selector::from_table(&table());
        s.compiled(Collective::Allreduce, 16, 32).unwrap();
        s.compiled(Collective::Allreduce, 32, 32).unwrap();
        s.compiled(Collective::Allreduce, 64, 32).unwrap();
        assert_eq!(s.cached_schedules(), 3);
        let s = s.with_cache_capacity(1);
        assert_eq!(s.cached_schedules(), 1);
    }

    #[test]
    fn tuning_dir_probe_order_and_error() {
        // The committed checkout path resolves (this test runs on the build
        // machine), whatever the exe dir holds.
        let dir = resolve_tuning_dir(None, None).unwrap();
        assert!(dir.ends_with("tuning") || dir.is_dir());

        // An existing env dir wins over everything.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let env_dir = manifest.join("src");
        let got = resolve_tuning_dir(Some(env_dir.clone().into_os_string()), None).unwrap();
        assert_eq!(got, env_dir);

        // A missing env dir is an error (the operator pointed somewhere
        // explicit; silently serving other tables would be worse), naming
        // the variable and the bad path.
        let err = resolve_tuning_dir(Some("/definitely/not/here".into()), None).unwrap_err();
        assert!(err.contains("BINE_TUNING_DIR"), "{err}");
        assert!(err.contains("/definitely/not/here"), "{err}");

        // An exe dir with a tuning/ sibling is preferred over the
        // compile-time fallback.
        let repo_root = manifest.join("../..").canonicalize().unwrap();
        let got = resolve_tuning_dir(None, Some(repo_root.clone())).unwrap();
        assert_eq!(got, repo_root.join("tuning"));
    }

    #[test]
    fn tuning_dir_error_lists_the_probed_locations() {
        // With no env override and a bogus exe dir, the probe list in a
        // failing error must name the exe-relative location. The
        // compile-time fallback exists on the build machine, so the full
        // everything-missing error is only reachable off-checkout; what is
        // testable here is that a bad exe probe is reported when it loses.
        let got = resolve_tuning_dir(None, Some(PathBuf::from("/nonexistent/exe"))).unwrap();
        assert!(got.is_dir(), "checkout fallback must resolve in-repo");

        let err = resolve_tuning_dir(Some("/nonexistent/env".into()), None).unwrap_err();
        assert!(err.contains("/nonexistent/env"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate entries")]
    fn building_an_index_from_a_duplicated_table_panics() {
        let mut t = table();
        let dup = t.entries[0].clone();
        t.entries.push(dup);
        let _ = SelectorIndex::from_table(&t);
    }
}
