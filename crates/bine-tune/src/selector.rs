//! The runtime selection API: O(log n) breakpoint lookup over a loaded
//! decision table, plus a small LRU of compiled schedules so repeated
//! invocations of the tuned pick pay the schedule build + compile cost once.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use bine_sched::{build, Collective, CompiledSchedule};

use crate::table::{slug, DecisionTable, Entry};

/// The tuned pick for one `(collective, nodes, bytes)` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuned<'a> {
    /// Base algorithm name (no `+segS` suffix), buildable via
    /// [`bine_sched::build`] together with [`Tuned::segments`].
    pub algorithm: &'a str,
    /// Pipeline segment count (1 = unsegmented).
    pub segments: usize,
}

/// One loaded entry: the owned pick name plus the split the selector hands
/// out without allocating.
struct Slot {
    /// Full pick name as committed (e.g. `"bine-large+seg8"`).
    pick: String,
    /// Length of the base-name prefix of `pick`.
    base_len: usize,
    /// Pipeline segment count.
    segments: usize,
}

/// Per-collective lookup index: ascending node breakpoints, each with its
/// ascending `(bytes, slot)` breakpoints.
type NodeIndex = Vec<(usize, Vec<(u64, u32)>)>;

/// Default capacity of the compiled-schedule LRU: enough for every vector
/// size of one sweep at a fixed node count without eviction.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Runtime algorithm selector over one system's decision table.
///
/// [`Selector::choose`] is allocation-free: the table is pre-indexed at
/// load time and lookups are two binary searches returning borrowed names
/// (covered by an allocation-counting test). [`Selector::compiled`]
/// additionally builds + compiles the picked schedule, memoised in an LRU.
pub struct Selector {
    system: String,
    slots: Vec<Slot>,
    index: Vec<(Collective, NodeIndex)>,
    cache: Vec<CacheLine>,
    cache_capacity: usize,
    clock: u64,
}

struct CacheLine {
    key: (Collective, usize, u32),
    compiled: Arc<CompiledSchedule>,
    last_used: u64,
}

impl Selector {
    /// Builds a selector from an in-memory decision table.
    pub fn from_table(table: &DecisionTable) -> Selector {
        let mut slots = Vec::with_capacity(table.entries.len());
        let mut index: Vec<(Collective, NodeIndex)> = Vec::new();
        // Entries are kept in canonical order, so grouping is a linear scan.
        let mut sorted = table.clone();
        sorted.sort();
        for e in &sorted.entries {
            let slot = push_slot(&mut slots, e);
            let coll = match index.iter_mut().find(|(c, _)| *c == e.collective) {
                Some((_, ni)) => ni,
                None => {
                    index.push((e.collective, Vec::new()));
                    &mut index.last_mut().unwrap().1
                }
            };
            match coll.last_mut() {
                Some((nodes, sizes)) if *nodes == e.nodes => sizes.push((e.vector_bytes, slot)),
                _ => coll.push((e.nodes, vec![(e.vector_bytes, slot)])),
            }
        }
        Selector {
            system: sorted.system,
            slots,
            index,
            cache: Vec::new(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            clock: 0,
        }
    }

    /// Loads the committed decision table for `system` (display name or
    /// slug, e.g. `"MareNostrum 5"` or `"marenostrum5"`) from the
    /// repository's `tuning/` directory.
    pub fn load(system: &str) -> Result<Selector, String> {
        Self::load_from(&default_tuning_dir().join(format!("{}.json", slug(system))))
    }

    /// Loads a decision table from an explicit path.
    pub fn load_from(path: &Path) -> Result<Selector, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read decision table {}: {e}", path.display()))?;
        let table = DecisionTable::from_json(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        Ok(Self::from_table(&table))
    }

    /// The system this selector was tuned for.
    pub fn system(&self) -> &str {
        &self.system
    }

    /// The tuned `(algorithm, segments)` for a configuration, by floor
    /// breakpoint lookup: the entry at the largest tuned node count ≤
    /// `nodes` and, within it, the largest tuned vector size ≤ `bytes`
    /// (clamped to the smallest breakpoint below the grid). Two binary
    /// searches, no allocation. `None` only when the table has no entries
    /// for `collective`.
    pub fn choose(&self, collective: Collective, nodes: usize, bytes: u64) -> Option<Tuned<'_>> {
        let slot = &self.slots[self.slot_index(collective, nodes, bytes)? as usize];
        Some(Tuned {
            algorithm: &slot.pick[..slot.base_len],
            segments: slot.segments,
        })
    }

    /// The floor-breakpoint lookup shared by [`Selector::choose`] and
    /// [`Selector::compiled`]: both must always resolve a query to the same
    /// table entry.
    fn slot_index(&self, collective: Collective, nodes: usize, bytes: u64) -> Option<u32> {
        let (_, node_index) = self.index.iter().find(|(c, _)| *c == collective)?;
        let ni = floor_index(node_index, |&(n, _)| n <= nodes);
        let (_, sizes) = &node_index[ni];
        let si = floor_index(sizes, |&(b, _)| b <= bytes);
        Some(sizes[si].1)
    }

    /// The compiled schedule of the tuned pick at `nodes` ranks, built on
    /// demand and memoised in a `DEFAULT_CACHE_CAPACITY`-entry LRU (keyed
    /// by the resolved entry and the actual rank count, so off-grid node
    /// counts get their own compilation).
    ///
    /// Rooted collectives (broadcast in the committed tables) are built
    /// with **root 0** — the root used throughout the harness and the
    /// tuning sweeps. For a different root, take [`Selector::choose`]'s
    /// pick and build the schedule via `bine_sched::build` directly.
    pub fn compiled(
        &mut self,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        let slot_idx = self.slot_index(collective, nodes, bytes)?;

        self.clock += 1;
        let clock = self.clock;
        let key = (collective, nodes, slot_idx);
        if let Some(line) = self.cache.iter_mut().find(|l| l.key == key) {
            line.last_used = clock;
            return Some(line.compiled.clone());
        }
        let slot = &self.slots[slot_idx as usize];
        let sched = build(collective, &slot.pick, nodes, 0)?;
        let compiled = Arc::new(sched.compile());
        if self.cache.len() >= self.cache_capacity {
            let evict = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.cache.swap_remove(evict);
        }
        self.cache.push(CacheLine {
            key,
            compiled: compiled.clone(),
            last_used: clock,
        });
        Some(compiled)
    }

    /// Number of compiled schedules currently cached.
    pub fn cached_schedules(&self) -> usize {
        self.cache.len()
    }
}

fn push_slot(slots: &mut Vec<Slot>, e: &Entry) -> u32 {
    let base_len = e.algorithm().len();
    slots.push(Slot {
        pick: e.pick.clone(),
        base_len,
        segments: e.segments(),
    });
    (slots.len() - 1) as u32
}

/// Index of the last element satisfying `below` (floor semantics), clamped
/// to the first element when the query is below every breakpoint.
fn floor_index<T>(sorted: &[T], below: impl FnMut(&T) -> bool) -> usize {
    sorted.partition_point(below).saturating_sub(1)
}

/// The committed `tuning/` directory: the `BINE_TUNING_DIR` environment
/// variable when set, otherwise the repository checkout this binary was
/// built from (two levels above this crate's manifest — a compile-time
/// path, so binaries deployed off the build machine must either set the
/// variable or use [`Selector::load_from`] with an explicit path).
pub fn default_tuning_dir() -> PathBuf {
    match std::env::var_os("BINE_TUNING_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tuning"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, ScoreModel};

    fn table() -> DecisionTable {
        let e = |nodes: usize, bytes: u64, pick: &str| Entry {
            collective: Collective::Allreduce,
            nodes,
            vector_bytes: bytes,
            pick: pick.into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        };
        DecisionTable {
            system: "Testbox".into(),
            entries: vec![
                e(16, 32, "recursive-doubling"),
                e(16, 1 << 20, "bine-large"),
                e(64, 32, "recursive-doubling"),
                e(64, 1 << 20, "bine-large+seg8"),
            ],
        }
    }

    #[test]
    fn choose_uses_floor_breakpoints_and_clamps() {
        let s = Selector::from_table(&table());
        // Exact grid points.
        let t = s.choose(Collective::Allreduce, 16, 32).unwrap();
        assert_eq!((t.algorithm, t.segments), ("recursive-doubling", 1));
        let t = s.choose(Collective::Allreduce, 64, 1 << 20).unwrap();
        assert_eq!((t.algorithm, t.segments), ("bine-large", 8));
        // Off-grid: floor on both axes (40 → the 16-node row, 4 MiB → the
        // 1 MiB breakpoint).
        let t = s.choose(Collective::Allreduce, 40, 1 << 22).unwrap();
        assert_eq!((t.algorithm, t.segments), ("bine-large", 1));
        // Below the grid: clamped to the smallest breakpoints.
        let t = s.choose(Collective::Allreduce, 4, 1).unwrap();
        assert_eq!((t.algorithm, t.segments), ("recursive-doubling", 1));
        // Unknown collective: None.
        assert!(s.choose(Collective::Broadcast, 16, 32).is_none());
    }

    #[test]
    fn compiled_schedules_are_cached_and_lru_evicted() {
        let mut s = Selector::from_table(&table());
        let a = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        let b = s.compiled(Collective::Allreduce, 16, 32).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(s.cached_schedules(), 1);
        // Distinct node counts compile separately even for one entry.
        let c = s.compiled(Collective::Allreduce, 32, 32).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.num_ranks, 32);
        assert_eq!(s.cached_schedules(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_line() {
        let mut s = Selector::from_table(&table());
        s.cache_capacity = 2;
        s.compiled(Collective::Allreduce, 16, 32).unwrap();
        s.compiled(Collective::Allreduce, 32, 32).unwrap();
        // Touch the first line so the second is the LRU victim.
        s.compiled(Collective::Allreduce, 16, 32).unwrap();
        s.compiled(Collective::Allreduce, 64, 32).unwrap();
        assert_eq!(s.cached_schedules(), 2);
        assert!(s
            .cache
            .iter()
            .any(|l| l.key == (Collective::Allreduce, 16, 0)));
        assert!(!s.cache.iter().any(|l| l.key.1 == 32));
    }
}
