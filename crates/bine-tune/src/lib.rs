//! # bine-tune
//!
//! The autotuning selection layer of the Bine Trees reproduction: the
//! paper's headline result (Figs. 9–11) is that the *best* collective
//! algorithm flips between ring, recursive-doubling and the Bine variants
//! with node count, message size and topology — so a production library
//! must not just *enumerate* those algorithms (`bine-sched`'s catalog) but
//! *choose* between them. This crate automates the choice:
//!
//! * [`tuner`] — the offline [`tuner::Tuner`]: a pruned sweep of the full
//!   catalog over a system's `(collective, nodes, size, segments)` grid,
//!   scored with the synchronous cost model and refined with the
//!   discrete-event simulator, emitting a compact [`table::DecisionTable`];
//! * [`table`] — the decision-table model and the committed `tuning/*.json`
//!   serialisation (one file per paper system);
//! * [`selector`] — the runtime [`selector::Selector`]:
//!   `choose(collective, nodes, bytes)` answers in two allocation-free
//!   binary searches, and `compiled(..)` memoises the picked schedule's
//!   compiled form in a small LRU;
//! * [`service`] — the concurrent [`service::ServiceSelector`]: the same
//!   lookups `&self` end-to-end over shared immutable indexes, a sharded
//!   compiled-schedule cache with single-flight compilation, graceful
//!   degradation under compile failures (bounded waits, capped-backoff
//!   retries, a per-entry circuit breaker serving the binomial baseline),
//!   and batch execution on the shared [`bine_exec::ExecutorPool`] — the
//!   serving front-end for many threads where [`selector::Selector`]
//!   serves one;
//! * [`adapt`] — online adaptive tuning over the serving layer: observed
//!   per-pick timings vs the committed modelled scores, single-flight
//!   challenger re-evaluation on divergence, and an epoch-versioned
//!   override overlay that never mutates the committed tables;
//! * [`gate`] — the CI drift gate that regenerates the tables on every
//!   push and fails on any silent change of policy.
//!
//! ## Quick example
//!
//! ```
//! use bine_sched::Collective;
//! use bine_tune::{DecisionTable, Selector};
//!
//! // Normally loaded from the committed tuning/*.json; built inline here.
//! let table = DecisionTable::from_json(
//!     "{\n  \"system\": \"Demo\",\n  \"entries\": [\n    \
//!      {\"collective\": \"allreduce\", \"nodes\": 16, \"bytes\": 32, \
//!       \"pick\": \"recursive-doubling\", \"model\": \"sync\", \"time_us\": 12.0},\n    \
//!      {\"collective\": \"allreduce\", \"nodes\": 16, \"bytes\": 1048576, \
//!       \"pick\": \"bine-large+seg8\", \"model\": \"des\", \"time_us\": 90.0}\n  ]\n}\n",
//! )
//! .unwrap();
//! let selector = Selector::from_table(&table);
//!
//! // Small vectors: latency-bound, recursive doubling. Large vectors: the
//! // pipelined Bine algorithm — including off-grid sizes, by floor lookup.
//! let small = selector.choose(Collective::Allreduce, 16, 256).unwrap();
//! assert_eq!((small.algorithm, small.segments), ("recursive-doubling", 1));
//! let large = selector.choose(Collective::Allreduce, 16, 3 << 20).unwrap();
//! assert_eq!((large.algorithm, large.segments), ("bine-large", 8));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapt;
pub mod gate;
pub mod selector;
pub mod service;
pub mod table;
pub mod tuner;

pub use adapt::{AdaptPolicy, AdaptiveOverlay, CandidatesFn, OverlayEntry, Reevaluator, ScoreFn};
pub use gate::{drift, DriftOutcome, DriftRow};
pub use selector::{available_systems, default_tuning_dir, Selector, SelectorIndex, Tuned};
pub use service::{
    fallback_pick, CompileAttempt, CompileHook, DegradePolicy, Recovery, Served, ServiceSelector,
    FALLBACK_SMALL_VECTOR_THRESHOLD,
};
pub use table::{slug, DecisionTable, Entry, ScoreModel};
pub use tuner::{
    candidates, pruned_best, tuned_name, Candidate, CellBest, Target, TunePoint, Tuner, TunerConfig,
};
