//! Online adaptive tuning for the serving layer.
//!
//! The committed decision tables are *model-derived*: the tuner scores the
//! catalog under the synchronous barrier model (refined by the DES on a
//! top-K shortlist) and commits the winner per grid point. A deployed
//! service observes something the offline model cannot — the cost actually
//! paid per pick, with whatever congestion, faults or drift the live system
//! exhibits. This module holds the public surface of the feedback loop
//! [`crate::service::ServiceSelector`] runs over those observations:
//!
//! * [`AdaptPolicy`] — when the loop is allowed to act: how many samples a
//!   grid entry needs before its observed mean is trusted, how far observed
//!   cost must diverge from the committed modelled score to trigger a
//!   re-evaluation, and how often an installed override is re-checked
//!   against the committed pick (the deterministic epsilon-greedy knob);
//! * [`Reevaluator`] — how challengers are found and scored when an entry
//!   diverges: a candidate enumeration (by default the tuner's catalog
//!   sweep, [`Reevaluator::catalog`]) plus a scoring function, both
//!   pluggable so a bench or test can score through a seeded faulted DES;
//! * [`AdaptiveOverlay`] / [`OverlayEntry`] — the observability dump: every
//!   override currently shadowing a committed pick, with the epoch it was
//!   installed at and the observed-vs-modelled costs that justified it.
//!
//! The committed tables themselves are **never mutated**: overrides live in
//! an epoch-versioned overlay on top of the immutable
//! [`crate::SelectorIndex`], so the CI drift gate keeps validating exactly
//! what was committed, and dropping the overlay (or disabling adaptation)
//! restores the committed behaviour bit for bit.

use std::sync::Arc;

use bine_sched::{algorithms, Collective};

/// Knobs of the adaptive feedback loop. See the
/// [module docs](crate::adapt) for where each one bites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptPolicy {
    /// Observations a grid entry must accumulate before its mean is
    /// compared against the committed modelled score at all.
    pub min_samples: u64,
    /// Divergence ratio that triggers a re-evaluation: observed mean ≥
    /// `divergence ×` the committed modelled score. Must be > 1 to be
    /// meaningful (a healthy entry sits near 1.0 only when the model is
    /// calibrated in absolute terms; what matters is the *relative* jump).
    pub divergence: f64,
    /// On an overridden entry, every `recheck_interval`-th observation
    /// re-scores the committed pick against the override — the
    /// deterministic stand-in for an epsilon-greedy explore step. A
    /// committed pick that wins its re-check reverts the override.
    pub recheck_interval: u64,
}

impl Default for AdaptPolicy {
    fn default() -> AdaptPolicy {
        AdaptPolicy {
            min_samples: 32,
            divergence: 1.5,
            recheck_interval: 16,
        }
    }
}

/// Enumerates challenger picks for one diverged grid entry.
pub type CandidatesFn = dyn Fn(Collective, usize, u64) -> Vec<String> + Send + Sync;

/// Scores one pick (by full name, `"bine-large+seg8"` style) at a grid
/// point; `None` when the pick cannot be scored (not buildable at this
/// rank count, simulation out of budget, …).
pub type ScoreFn = dyn Fn(&str, Collective, usize, u64) -> Option<f64> + Send + Sync;

/// The challenger search run when an entry's observed cost diverges from
/// its committed modelled score: an enumeration of candidate picks plus a
/// scorer. Both halves are plugged in at construction so the serving layer
/// never hard-codes *why* the model was wrong — a test scores through a
/// faulted DES, a deployment could score through live probes.
#[derive(Clone)]
pub struct Reevaluator {
    candidates: Arc<CandidatesFn>,
    score: Arc<ScoreFn>,
}

impl Reevaluator {
    /// Builds a re-evaluator from a candidate enumeration and a scorer.
    pub fn new(candidates: Arc<CandidatesFn>, score: Arc<ScoreFn>) -> Reevaluator {
        Reevaluator { candidates, score }
    }

    /// A re-evaluator over the full algorithm catalog of each collective
    /// (the same candidate set the offline tuner sweeps, linear algorithms
    /// capped at `max_linear_nodes` ranks), scored by `score`.
    pub fn catalog(max_linear_nodes: usize, score: Arc<ScoreFn>) -> Reevaluator {
        Reevaluator::new(
            Arc::new(move |collective, nodes, _bytes| {
                algorithms(collective)
                    .into_iter()
                    .filter(|a| !a.is_linear || nodes <= max_linear_nodes)
                    .map(|a| a.name().to_string())
                    .collect()
            }),
            score,
        )
    }

    /// The challenger list for a grid point, never empty of the committed
    /// pick: the incumbent always defends its slot, so "no challenger beats
    /// it" and "the enumeration forgot it" cannot be confused.
    pub(crate) fn candidates_with(
        &self,
        committed: &str,
        collective: Collective,
        nodes: usize,
        vector_bytes: u64,
    ) -> Vec<String> {
        let mut cands = (self.candidates)(collective, nodes, vector_bytes);
        if !cands.iter().any(|c| c == committed) {
            cands.push(committed.to_string());
        }
        cands
    }

    /// Scores one pick; see [`ScoreFn`].
    pub(crate) fn score(
        &self,
        pick: &str,
        collective: Collective,
        nodes: usize,
        vector_bytes: u64,
    ) -> Option<f64> {
        (self.score)(pick, collective, nodes, vector_bytes)
    }

    /// The winning `(pick, score)` over the challenger list: the first
    /// strict minimum in enumeration order. Deterministic — ties keep the
    /// earlier candidate, so a challenger must score *strictly* better
    /// than everything before it to win. `None` when nothing scored.
    pub(crate) fn best(
        &self,
        committed: &str,
        collective: Collective,
        nodes: usize,
        vector_bytes: u64,
    ) -> Option<(String, f64)> {
        let mut best: Option<(String, f64)> = None;
        for cand in self.candidates_with(committed, collective, nodes, vector_bytes) {
            if let Some(score) = self.score(&cand, collective, nodes, vector_bytes) {
                let better = match &best {
                    Some((_, incumbent)) => score < *incumbent,
                    None => true,
                };
                if better {
                    best = Some((cand, score));
                }
            }
        }
        best
    }
}

impl std::fmt::Debug for Reevaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reevaluator").finish_non_exhaustive()
    }
}

/// One active override in the adaptive overlay: a challenger shadowing a
/// committed pick for a grid entry.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayEntry {
    /// Display name of the system the entry belongs to.
    pub system: String,
    /// Collective of the grid entry.
    pub collective: Collective,
    /// Rank count of the cache entry (the actual requested count, which
    /// may be off the tuned grid).
    pub nodes: usize,
    /// The committed pick the override shadows.
    pub committed: String,
    /// The challenger currently served instead.
    pub pick: String,
    /// Monotonic installation epoch (service-wide): a later override —
    /// anywhere in the service — has a larger epoch.
    pub epoch: u64,
    /// Observations accumulated when the override was promoted.
    pub samples: u64,
    /// Observed mean cost (µs) that triggered the promotion.
    pub observed_mean_us: f64,
    /// The committed pick's modelled score (µs) it diverged from.
    pub modelled_us: f64,
    /// The challenger's re-evaluated score (µs).
    pub challenger_us: f64,
}

/// A point-in-time dump of every active override; see
/// [`crate::service::ServiceSelector::overlay`]. Empty on a service whose
/// observations all match the committed model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptiveOverlay {
    /// Active overrides, ordered by installation epoch.
    pub entries: Vec<OverlayEntry>,
}

impl AdaptiveOverlay {
    /// Number of active overrides.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no override is active.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_reevaluator_enumerates_the_tuners_candidate_set() {
        let r = Reevaluator::catalog(64, Arc::new(|_, _, _, _| Some(1.0)));
        let cands = r.candidates_with("bine-large", Collective::Allreduce, 16, 1 << 20);
        assert!(cands.iter().any(|c| c == "bine-large"));
        assert!(cands.iter().any(|c| c == "recursive-doubling"));
        // Linear algorithms are capped: at 128 > 64 ranks they disappear,
        // but the committed pick is always defended.
        let cands = r.candidates_with("linear", Collective::Alltoall, 128, 1 << 20);
        assert!(cands.iter().any(|c| c == "linear"), "incumbent defended");
    }

    #[test]
    fn best_is_the_first_strict_minimum_in_enumeration_order() {
        let r = Reevaluator::new(
            Arc::new(|_, _, _| vec!["a".to_string(), "b".to_string(), "c".to_string()]),
            Arc::new(|pick, _, _, _| match pick {
                "a" => Some(2.0),
                "b" => Some(1.0),
                "c" => Some(1.0), // ties keep the earlier candidate
                _ => Some(1.5),   // the committed incumbent, appended last
            }),
        );
        let (pick, score) = r
            .best("committed", Collective::Allreduce, 16, 1024)
            .unwrap();
        assert_eq!((pick.as_str(), score), ("b", 1.0));
    }

    #[test]
    fn unscorable_candidates_are_skipped_not_fatal() {
        let r = Reevaluator::new(
            Arc::new(|_, _, _| vec!["broken".to_string()]),
            Arc::new(|pick, _, _, _| (pick != "broken").then_some(3.0)),
        );
        let (pick, _) = r
            .best("committed", Collective::Allreduce, 16, 1024)
            .unwrap();
        assert_eq!(pick, "committed");
        // Nothing scorable at all: no winner, the caller records a failed
        // re-evaluation instead of promoting garbage.
        let r = Reevaluator::new(Arc::new(|_, _, _| Vec::new()), Arc::new(|_, _, _, _| None));
        assert!(r
            .best("committed", Collective::Allreduce, 16, 1024)
            .is_none());
    }
}
