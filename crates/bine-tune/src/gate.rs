//! The CI decision-table drift gate.
//!
//! The committed `tuning/*.json` files are the repository's algorithm
//! selection policy; the tuner that regenerates them is deterministic (no
//! timing, no sampling beyond the seeded placements), so CI can rebuild
//! them from scratch and demand byte-level agreement of the *decisions* —
//! any divergence means a code change silently altered what the library
//! would pick, which must be an explicit, reviewed table regeneration
//! instead (the `perf_gate` pattern applied to policy instead of ns/op).
//!
//! Scores are compared with a small relative tolerance rather than
//! exactly: the serialised `time_us` is rounded to six decimals, so a
//! reparsed baseline can differ from a fresh computation in the last
//! digit without any behavioural change.

use crate::table::DecisionTable;

/// Relative `time_us` discrepancy treated as serialisation rounding noise.
pub const SCORE_TOLERANCE: f64 = 1e-6;

/// One divergent grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// `collective/nodes/bytes` key of the grid point.
    pub key: String,
    /// Committed pick (`None` when the point only exists regenerated).
    pub committed: Option<String>,
    /// Regenerated pick (`None` when the point vanished).
    pub regenerated: Option<String>,
    /// Human-readable description of what diverged.
    pub what: String,
}

/// Outcome of diffing a regenerated table against the committed one.
#[derive(Debug, Clone)]
pub struct DriftOutcome {
    /// The system the tables describe.
    pub system: String,
    /// Total grid points compared.
    pub compared: usize,
    /// Divergent grid points (empty = gate passes).
    pub rows: Vec<DriftRow>,
}

impl DriftOutcome {
    /// Whether the regenerated table matches the committed one.
    pub fn passed(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the diff as a GitHub-flavoured markdown table for the CI
    /// step summary.
    pub fn markdown(&self) -> String {
        let mut out = format!(
            "## Decision-table drift gate — {}\n\n{} grid points compared.\n\n",
            self.system, self.compared
        );
        if self.rows.is_empty() {
            out.push_str("No drift: the committed `tuning/` tables reproduce exactly.\n");
            return out;
        }
        out.push_str("| grid point | committed | regenerated | drift |\n|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                r.key,
                r.committed.as_deref().unwrap_or("missing"),
                r.regenerated.as_deref().unwrap_or("missing"),
                r.what
            ));
        }
        out.push_str(&format!(
            "\n**FAIL**: {} grid point{} diverged. If the algorithm-selection change is \
             intentional, regenerate the committed tables (`cargo run --release -p bine-bench \
             --bin tune`) and commit the `tuning/` diff for review.\n",
            self.rows.len(),
            if self.rows.len() == 1 { "" } else { "s" },
        ));
        out
    }
}

/// Diffs `regenerated` against the `committed` baseline.
pub fn drift(committed: &DecisionTable, regenerated: &DecisionTable) -> DriftOutcome {
    let mut rows = Vec::new();
    if committed.system != regenerated.system {
        rows.push(DriftRow {
            key: "system".into(),
            committed: Some(committed.system.clone()),
            regenerated: Some(regenerated.system.clone()),
            what: "system name".into(),
        });
    }
    let key = |e: &crate::table::Entry| match e.dist {
        Some(d) => format!(
            "{}@{}/{}/{}",
            e.collective.name(),
            d.name(),
            e.nodes,
            e.vector_bytes
        ),
        None => format!("{}/{}/{}", e.collective.name(), e.nodes, e.vector_bytes),
    };
    for c in &committed.entries {
        match regenerated.at(c.collective, c.dist, c.nodes, c.vector_bytes) {
            None => rows.push(DriftRow {
                key: key(c),
                committed: Some(c.pick.clone()),
                regenerated: None,
                what: "grid point vanished".into(),
            }),
            Some(r) => {
                if r.pick != c.pick || r.model != c.model {
                    rows.push(DriftRow {
                        key: key(c),
                        committed: Some(format!("{} ({})", c.pick, c.model.name())),
                        regenerated: Some(format!("{} ({})", r.pick, r.model.name())),
                        what: "pick changed".into(),
                    });
                } else if (r.time_us - c.time_us).abs() > SCORE_TOLERANCE * c.time_us.abs() {
                    rows.push(DriftRow {
                        key: key(c),
                        committed: Some(format!("{:.6} us", c.time_us)),
                        regenerated: Some(format!("{:.6} us", r.time_us)),
                        what: "score changed".into(),
                    });
                }
            }
        }
    }
    for r in &regenerated.entries {
        if committed
            .at(r.collective, r.dist, r.nodes, r.vector_bytes)
            .is_none()
        {
            rows.push(DriftRow {
                key: key(r),
                committed: None,
                regenerated: Some(r.pick.clone()),
                what: "new grid point (baseline not regenerated)".into(),
            });
        }
    }
    DriftOutcome {
        system: committed.system.clone(),
        compared: committed.entries.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, ScoreModel};
    use bine_sched::Collective;

    fn table() -> DecisionTable {
        DecisionTable {
            system: "Testbox".into(),
            entries: vec![
                Entry {
                    collective: Collective::Allreduce,
                    dist: None,
                    nodes: 16,
                    vector_bytes: 32,
                    pick: "recursive-doubling".into(),
                    model: ScoreModel::Sync,
                    time_us: 10.0,
                },
                Entry {
                    collective: Collective::Allreduce,
                    dist: None,
                    nodes: 16,
                    vector_bytes: 1 << 20,
                    pick: "bine-large+seg8".into(),
                    model: ScoreModel::Des,
                    time_us: 100.0,
                },
            ],
        }
    }

    #[test]
    fn identical_tables_pass() {
        let outcome = drift(&table(), &table());
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 2);
        assert!(outcome.markdown().contains("No drift"));
    }

    #[test]
    fn a_changed_pick_fails_with_a_markdown_diff() {
        let mut regen = table();
        regen.entries[1].pick = "ring".into();
        let outcome = drift(&table(), &regen);
        assert!(!outcome.passed());
        let md = outcome.markdown();
        assert!(md.contains("**FAIL**"));
        assert!(md.contains("allreduce/16/1048576"));
        assert!(md.contains("bine-large+seg8"));
        assert!(md.contains("ring"));
    }

    #[test]
    fn rounding_noise_passes_but_real_score_changes_fail() {
        let mut regen = table();
        regen.entries[0].time_us = 10.0 + 10.0 * SCORE_TOLERANCE * 0.5;
        assert!(drift(&table(), &regen).passed());
        regen.entries[0].time_us = 10.5;
        let outcome = drift(&table(), &regen);
        assert!(!outcome.passed());
        assert_eq!(outcome.rows[0].what, "score changed");
    }

    #[test]
    fn vanished_and_new_grid_points_fail() {
        let mut regen = table();
        regen.entries.pop();
        assert!(!drift(&table(), &regen).passed());
        let mut regen = table();
        regen.entries.push(Entry {
            collective: Collective::Broadcast,
            dist: None,
            nodes: 4,
            vector_bytes: 32,
            pick: "bine-tree".into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        });
        let outcome = drift(&table(), &regen);
        assert!(!outcome.passed());
        assert!(outcome.markdown().contains("new grid point"));
    }
}
