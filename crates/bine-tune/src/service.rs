//! The concurrent serving layer over the decision tables.
//!
//! [`crate::selector::Selector`] is a single-client API: `compiled` takes
//! `&mut self`, so one thread at a time can resolve a pick into an
//! executable schedule. A selection *service* — thousands of callers
//! hitting the Sec. 5.2.2 tables per collective call — needs the opposite
//! shape, and [`ServiceSelector`] provides it, `&self` end to end:
//!
//! * **immutable indexes** — every loaded system's table is pre-indexed
//!   once into an `Arc<`[`SelectorIndex`]`>`; lookups are the exact binary
//!   searches the serial selector runs, on literally shared data, so a
//!   concurrent pick can never diverge from the serial one (pinned by a
//!   proptest in `tests/service.rs`);
//! * **a sharded, lock-striped compiled-schedule cache** — the LRU is split
//!   into [`ServiceSelector::num_shards`] independently locked shards, each
//!   with its own capacity and LRU clock, keyed by
//!   `(system, collective, nodes, slot)`; concurrent hits on different
//!   entries take different locks and never serialise on a global one;
//! * **single-flight compilation** — a cache miss registers an in-flight
//!   handle in its shard before compiling *outside* the lock; concurrent
//!   requests for the same entry find the handle and block on it instead of
//!   compiling again, so an entry is compiled exactly once however many
//!   threads race for it cold (the stress test counts compilations);
//! * **shared execution** — [`ServiceSelector::execute`] runs the resolved
//!   schedule on the process-wide [`bine_exec::ExecutorPool`], turning a
//!   `(system, collective, nodes, bytes, data)` request into finished block
//!   stores without the caller touching schedules at all.

use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use bine_exec::{BlockStore, ExecutorPool};
use bine_sched::{Collective, CompiledSchedule};

use crate::selector::{SelectorIndex, Tuned, DEFAULT_CACHE_CAPACITY};
use crate::table::{slug, DecisionTable};

/// Default number of cache shards. More shards than typical worker counts,
/// so two concurrent requests rarely contend on one stripe.
pub const DEFAULT_SHARDS: usize = 16;

/// Cache key: `(system index, collective, nodes, resolved slot)`. Distinct
/// byte sizes resolving to one table entry share a compiled schedule;
/// off-grid node counts get their own compilation.
type Key = (u32, Collective, usize, u32);

struct CacheLine {
    key: Key,
    compiled: Arc<CompiledSchedule>,
    last_used: u64,
}

/// The single-flight handle one leader publishes per in-flight compile.
/// Followers block on the condvar until the leader settles the result.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    /// `None` when the pick was deterministically not buildable at this
    /// rank count — a follower would have reached the same `None`.
    Done(Option<Arc<CompiledSchedule>>),
    /// The leader panicked mid-compile: the outcome is *unknown*, not
    /// "unbuildable". Followers re-enter the request path and retry
    /// (typically becoming the next leader and hitting the same panic in
    /// their own thread), so a crash is never misreported as a permanently
    /// unservable configuration.
    Abandoned,
}

/// What a follower observed when its flight settled.
enum FlightOutcome {
    Done(Option<Arc<CompiledSchedule>>),
    Abandoned,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn wait(&self) -> FlightOutcome {
        let mut state = lock_any(&self.state);
        loop {
            match &*state {
                FlightState::Done(result) => return FlightOutcome::Done(result.clone()),
                FlightState::Abandoned => return FlightOutcome::Abandoned,
                FlightState::Pending => state = wait_any(&self.done, state),
            }
        }
    }

    fn settle(&self, state: FlightState) {
        *lock_any(&self.state) = state;
        self.done.notify_all();
    }
}

/// Locks a mutex, tolerating poison: a panicking compile must not turn
/// every later request on the same shard into a secondary panic.
fn lock_any<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait_any<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

struct ShardState {
    lines: Vec<CacheLine>,
    in_flight: Vec<(Key, Arc<Flight>)>,
    clock: u64,
    /// Stats live per shard, as plain integers under the stripe lock the
    /// hot path already holds — global atomic counters would put one cache
    /// line ping-ponging between every core on every request.
    hits: u64,
    misses: u64,
    compilations: u64,
}

impl ShardState {
    fn new() -> Mutex<ShardState> {
        Mutex::new(ShardState {
            lines: Vec::new(),
            in_flight: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            compilations: 0,
        })
    }

    /// Evicts least-recently-used lines until at most `max_lines` remain.
    /// Never panics: an empty cache simply has no victim.
    fn evict_down_to(&mut self, max_lines: usize) {
        while self.lines.len() > max_lines {
            let victim = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.lines.swap_remove(i);
                }
                None => break,
            }
        }
    }

    /// Inserts a line, first evicting down to `capacity − 1` so the cache
    /// never exceeds `capacity` lines.
    fn insert(&mut self, key: Key, compiled: Arc<CompiledSchedule>, capacity: usize) {
        self.clock += 1;
        self.evict_down_to(capacity.saturating_sub(1));
        self.lines.push(CacheLine {
            key,
            compiled,
            last_used: self.clock,
        });
    }
}

/// Leader-side completion guard: however the leader exits — success, an
/// unbuildable pick, or a panic inside `compile` — the in-flight handle is
/// removed from the shard and settled, so followers can never deadlock on
/// an abandoned flight. On success the compiled schedule is inserted into
/// the shard cache *in the same lock acquisition* that retires the flight:
/// there is no window in which a third thread sees neither the cache line
/// nor the in-flight handle and compiles a second time. On unwind the
/// flight settles as [`FlightState::Abandoned`], sending followers back to
/// retry rather than handing them a false "unbuildable".
struct FlightGuard<'a> {
    shard: &'a Mutex<ShardState>,
    key: Key,
    flight: Arc<Flight>,
    capacity: usize,
    /// Set by the leader on completion; still unset on unwind.
    result: Option<Option<Arc<CompiledSchedule>>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let result = self.result.take();
        {
            let mut shard = lock_any(self.shard);
            shard.in_flight.retain(|(k, _)| *k != self.key);
            if let Some(Some(compiled)) = &result {
                shard.insert(self.key, Arc::clone(compiled), self.capacity);
            }
        }
        self.flight.settle(match result {
            Some(result) => FlightState::Done(result),
            None => FlightState::Abandoned,
        });
    }
}

/// A thread-safe selection service over one or more systems' decision
/// tables: `&self` end-to-end lookup, a sharded compiled-schedule cache
/// with single-flight compilation, and batch execution on the shared
/// executor pool. See the [module docs](crate::service) for the design.
pub struct ServiceSelector {
    /// One immutable pre-indexed table per loaded system, in load order.
    systems: Vec<Arc<SelectorIndex>>,
    /// Slugs of the loaded systems (parallel to `systems`), for by-name
    /// resolution without re-slugging the stored display names per query.
    slugs: Vec<String>,
    shards: Vec<Mutex<ShardState>>,
    shard_capacity: usize,
}

impl ServiceSelector {
    /// Builds a service over pre-indexed tables (shared with any existing
    /// [`crate::Selector`]s via the `Arc`s).
    pub fn from_indexes(indexes: Vec<Arc<SelectorIndex>>) -> ServiceSelector {
        let slugs = indexes.iter().map(|i| slug(i.system())).collect();
        ServiceSelector {
            systems: indexes,
            slugs,
            shards: (0..DEFAULT_SHARDS).map(|_| ShardState::new()).collect(),
            shard_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }

    /// Builds a service from in-memory decision tables.
    pub fn from_tables(tables: &[DecisionTable]) -> ServiceSelector {
        Self::from_indexes(
            tables
                .iter()
                .map(|t| Arc::new(SelectorIndex::from_table(t)))
                .collect(),
        )
    }

    /// Loads every committed decision table (`*.json`) from the tuning
    /// directory resolved by [`crate::default_tuning_dir`] — all four paper
    /// systems in the stock checkout.
    pub fn load_default() -> Result<ServiceSelector, String> {
        Self::load_dir(&crate::default_tuning_dir()?)
    }

    /// Loads every `*.json` decision table under `dir`, sorted by file name
    /// so system indices are deterministic.
    pub fn load_dir(dir: &Path) -> Result<ServiceSelector, String> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read tuning directory {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no decision tables (*.json) in {}", dir.display()));
        }
        let mut tables = Vec::with_capacity(paths.len());
        for path in &paths {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read decision table {}: {e}", path.display()))?;
            tables.push(
                DecisionTable::from_json(&text)
                    .map_err(|e| format!("cannot parse {}: {e}", path.display()))?,
            );
        }
        Ok(Self::from_tables(&tables))
    }

    /// Sets the number of cache shards (clamped to ≥ 1). Call before
    /// serving: rebuilding the stripes drops any cached schedules.
    pub fn with_shards(mut self, shards: usize) -> ServiceSelector {
        self.shards = (0..shards.max(1)).map(|_| ShardState::new()).collect();
        self
    }

    /// Sets the per-shard LRU capacity (clamped to ≥ 1, like
    /// [`crate::Selector::with_cache_capacity`]).
    pub fn with_shard_capacity(mut self, capacity: usize) -> ServiceSelector {
        self.shard_capacity = capacity.max(1);
        for shard in &self.shards {
            lock_any(shard).evict_down_to(self.shard_capacity);
        }
        self
    }

    /// Display names of the loaded systems, in index order.
    pub fn system_names(&self) -> Vec<&str> {
        self.systems.iter().map(|i| i.system()).collect()
    }

    /// Index of a system by display name or slug (`"MareNostrum 5"` and
    /// `"marenostrum5"` both resolve).
    pub fn system_index(&self, system: &str) -> Option<usize> {
        let wanted = slug(system);
        self.slugs.iter().position(|s| *s == wanted)
    }

    /// The shared index of system `sys`, if loaded.
    pub fn index(&self, sys: usize) -> Option<&Arc<SelectorIndex>> {
        self.systems.get(sys)
    }

    /// The tuned `(algorithm, segments)` for a query against `system`
    /// (by name or slug) — same floor-breakpoint semantics, same code and
    /// data as the serial [`crate::Selector::choose`].
    pub fn choose(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.choose_at(self.system_index(system)?, collective, nodes, bytes)
    }

    /// [`ServiceSelector::choose`] by system index (skips the name lookup
    /// on hot paths).
    pub fn choose_at(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.systems.get(sys)?.choose(collective, nodes, bytes)
    }

    /// The compiled schedule of the tuned pick, from the sharded cache or
    /// compiled once under single-flight. `&self`: safe to call from any
    /// number of threads over one shared service.
    ///
    /// Rooted collectives are built with root 0, exactly as in
    /// [`crate::Selector::compiled`].
    pub fn compiled(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        self.compiled_at(self.system_index(system)?, collective, nodes, bytes)
    }

    /// [`ServiceSelector::compiled`] by system index.
    pub fn compiled_at(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        let index = self.systems.get(sys)?;
        let slot = index.slot_index(collective, nodes, bytes)?;
        let key: Key = (sys as u32, collective, nodes, slot);
        let shard = &self.shards[self.shard_of(&key)];

        enum Role {
            Leader(Arc<Flight>),
            Follower(Arc<Flight>),
        }
        loop {
            let role = {
                let mut state = lock_any(shard);
                state.clock += 1;
                let clock = state.clock;
                if let Some(pos) = state.lines.iter().position(|l| l.key == key) {
                    state.lines[pos].last_used = clock;
                    state.hits += 1;
                    return Some(state.lines[pos].compiled.clone());
                }
                state.misses += 1;
                match state.in_flight.iter().find(|(k, _)| *k == key) {
                    Some((_, flight)) => Role::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.in_flight.push((key, Arc::clone(&flight)));
                        state.compilations += 1;
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Follower(flight) => match flight.wait() {
                    FlightOutcome::Done(result) => return result,
                    // The leader panicked: its outcome says nothing about
                    // this entry. Retry — typically becoming the next
                    // leader and surfacing the same panic in this thread.
                    FlightOutcome::Abandoned => continue,
                },
                Role::Leader(flight) => {
                    let mut guard = FlightGuard {
                        shard,
                        key,
                        flight,
                        capacity: self.shard_capacity,
                        result: None,
                    };
                    // Outside the shard lock: other entries of this shard
                    // stay servable while this one compiles.
                    let compiled = index.compile_slot(collective, nodes, slot);
                    guard.result = Some(compiled.clone());
                    drop(guard); // retire the flight + publish the cache line
                    return compiled;
                }
            }
        }
    }

    /// Resolves the tuned pick, compiles (or fetches) its schedule and
    /// executes it over `initial` block stores on `pool`. `None` when the
    /// query resolves to no table entry or the pick is not buildable at
    /// this rank count.
    pub fn execute_on(
        &self,
        pool: &ExecutorPool,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Vec<BlockStore>> {
        let compiled = self.compiled(system, collective, nodes, bytes)?;
        Some(pool.run(&compiled, initial))
    }

    /// [`ServiceSelector::execute_on`] over the process-wide
    /// [`ExecutorPool::global`].
    pub fn execute(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Vec<BlockStore>> {
        self.execute_on(
            ExecutorPool::global(),
            system,
            collective,
            nodes,
            bytes,
            initial,
        )
    }

    fn shard_of(&self, key: &Key) -> usize {
        // A cheap splitmix-style integer mix instead of the std SipHash:
        // the stripe choice runs on every request and only needs to spread
        // a handful of small integers, not resist collision attacks.
        let (sys, collective, nodes, slot) = *key;
        let mut h = (sys as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (collective as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ (nodes as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ (slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h % self.shards.len() as u64) as usize
    }

    /// Number of cache shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard LRU capacity.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of compiled schedules currently cached, across all shards.
    pub fn cached_schedules(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Current line count of every shard (for capacity-invariant tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| lock_any(s).lines.len())
            .collect()
    }

    /// Cache hits served so far, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).hits).sum()
    }

    /// Cache misses across all shards (followers waiting on an in-flight
    /// compile count as misses, not as compilations).
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).misses).sum()
    }

    /// Compilations started (single-flight leaderships taken) — with a
    /// warm-enough cache this equals the number of distinct
    /// `(system, collective, nodes, slot)` entries ever requested, however
    /// many threads raced for them; evicted entries recompile on
    /// re-request.
    pub fn compilations(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).compilations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, ScoreModel};
    use crate::Selector;

    fn table(system: &str) -> DecisionTable {
        let e = |collective, nodes: usize, bytes: u64, pick: &str| Entry {
            collective,
            nodes,
            vector_bytes: bytes,
            pick: pick.into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        };
        DecisionTable {
            system: system.into(),
            entries: vec![
                e(Collective::Allreduce, 16, 32, "recursive-doubling"),
                e(Collective::Allreduce, 16, 1 << 20, "bine-large"),
                e(Collective::Allreduce, 64, 32, "recursive-doubling"),
                e(Collective::Allreduce, 64, 1 << 20, "bine-large+seg8"),
                e(Collective::Broadcast, 16, 32, "bine-tree"),
            ],
        }
    }

    #[test]
    fn choose_matches_the_serial_selector() {
        let t = table("Testbox");
        let serial = Selector::from_table(&t);
        let service = ServiceSelector::from_tables(&[t]);
        for nodes in [4usize, 16, 40, 64, 100] {
            for bytes in [1u64, 32, 4096, 1 << 20, 1 << 26] {
                assert_eq!(
                    service.choose("Testbox", Collective::Allreduce, nodes, bytes),
                    serial.choose(Collective::Allreduce, nodes, bytes),
                );
            }
        }
        assert!(service
            .choose("Testbox", Collective::Alltoall, 16, 32)
            .is_none());
        assert!(service
            .choose("nosuch", Collective::Allreduce, 16, 32)
            .is_none());
    }

    #[test]
    fn systems_resolve_by_name_or_slug() {
        let service = ServiceSelector::from_tables(&[table("MareNostrum 5"), table("LUMI")]);
        assert_eq!(service.system_index("MareNostrum 5"), Some(0));
        assert_eq!(service.system_index("marenostrum5"), Some(0));
        assert_eq!(service.system_index("lumi"), Some(1));
        assert_eq!(service.system_index("Frontier"), None);
        assert_eq!(service.system_names(), vec!["MareNostrum 5", "LUMI"]);
    }

    #[test]
    fn compiled_hits_the_cache_on_repeat() {
        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        let a = service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        let b = service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(service.compilations(), 1);
        assert_eq!(service.hits(), 1);
        assert_eq!(service.misses(), 1);
        assert_eq!(service.cached_schedules(), 1);
        // Distinct node counts compile separately even for one entry.
        let c = service
            .compiled("Testbox", Collective::Allreduce, 32, 32)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.num_ranks, 32);
        assert_eq!(service.compilations(), 2);
    }

    #[test]
    fn per_shard_capacity_is_respected_even_at_zero() {
        let service = ServiceSelector::from_tables(&[table("Testbox")])
            .with_shards(1)
            .with_shard_capacity(0); // clamped to 1
        assert_eq!(service.shard_capacity(), 1);
        service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        service
            .compiled("Testbox", Collective::Allreduce, 32, 32)
            .unwrap();
        assert_eq!(service.cached_schedules(), 1);
        assert!(service.shard_lens().iter().all(|&len| len <= 1));
    }

    #[test]
    fn execute_runs_the_tuned_pick_end_to_end() {
        use bine_exec::state::Workload;
        use bine_sched::build;

        let t = table("Testbox");
        let service = ServiceSelector::from_tables(&[t]);
        // The pick at (allreduce, 16, 32) is recursive-doubling; run it and
        // cross-check against the serial reference executor.
        let sched = build(Collective::Allreduce, "recursive-doubling", 16, 0).unwrap();
        let w = Workload::for_schedule(&sched, 2);
        let expected = bine_exec::sequential::run_reference(&sched, w.initial_state(&sched));
        let finals = service
            .execute(
                "Testbox",
                Collective::Allreduce,
                16,
                32,
                w.initial_state(&sched),
            )
            .unwrap();
        assert_eq!(finals, expected);
    }
}
