//! The concurrent serving layer over the decision tables.
//!
//! [`crate::selector::Selector`] is a single-client API: `compiled` takes
//! `&mut self`, so one thread at a time can resolve a pick into an
//! executable schedule. A selection *service* — thousands of callers
//! hitting the Sec. 5.2.2 tables per collective call — needs the opposite
//! shape, and [`ServiceSelector`] provides it, `&self` end to end:
//!
//! * **immutable indexes** — every loaded system's table is pre-indexed
//!   once into an `Arc<`[`SelectorIndex`]`>`; lookups are the exact binary
//!   searches the serial selector runs, on literally shared data, so a
//!   concurrent pick can never diverge from the serial one (pinned by a
//!   proptest in `tests/service.rs`);
//! * **a sharded, lock-striped compiled-schedule cache** — the LRU is split
//!   into [`ServiceSelector::num_shards`] independently locked shards, each
//!   with its own capacity and LRU clock, keyed by
//!   `(system, collective, nodes, slot)`; concurrent hits on different
//!   entries take different locks and never serialise on a global one;
//! * **single-flight compilation** — a cache miss registers an in-flight
//!   handle in its shard before compiling *outside* the lock; concurrent
//!   requests for the same entry find the handle and block on it instead of
//!   compiling again, so an entry is compiled exactly once however many
//!   threads race for it cold (the stress test counts compilations);
//! * **graceful degradation** — followers bound their wait on an in-flight
//!   compile with [`DegradePolicy::flight_timeout`]; a leader whose compile
//!   panics retries with capped exponential backoff, and repeated failures
//!   trip a per-entry circuit breaker that serves the always-buildable
//!   binomial baseline ([`fallback_pick`]) while the breaker half-opens in
//!   the background — so every request gets *an* answer, and the per-shard
//!   fallback/timeout/retry counters make degraded mode observable;
//! * **shared execution** — [`ServiceSelector::execute`] runs the resolved
//!   schedule on the process-wide [`bine_exec::ExecutorPool`], turning a
//!   `(system, collective, nodes, bytes, data)` request into finished block
//!   stores without the caller touching schedules at all;
//! * **shrink-and-retry crash recovery** —
//!   [`ServiceSelector::try_execute_recovering_on`] turns a dead-rank stall
//!   ([`ExecError::RankDead`]) into a ULFM-style recovery: the communicator
//!   shrinks to the dense survivor renumbering, the pick is rebuilt and
//!   compiled at the shrunk size under a distinguished cache slot, and the
//!   collective re-runs over the survivors — observable through the
//!   [`ServiceSelector::stalls`]/[`ServiceSelector::recoveries`] counters
//!   and pinned bit-identical to a direct shrunk run by the `crash_chaos`
//!   harness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use bine_exec::{BlockStore, ExecError, ExecutorPool, Workload};
use bine_net::feedback::{LogHistogram, ObservedTiming};
use bine_sched::{binomial_default, build, Collective, CompiledSchedule, RankMap, Schedule};

use crate::adapt::{AdaptPolicy, AdaptiveOverlay, OverlayEntry, Reevaluator};
use crate::selector::{SelectorIndex, Tuned, DEFAULT_CACHE_CAPACITY};
use crate::table::{slug, DecisionTable};

/// Default number of cache shards. More shards than typical worker counts,
/// so two concurrent requests rarely contend on one stripe.
pub const DEFAULT_SHARDS: usize = 16;

/// Cache key: `(system index, collective, nodes, resolved slot)`. Distinct
/// byte sizes resolving to one table entry share a compiled schedule;
/// off-grid node counts get their own compilation.
type Key = (u32, Collective, usize, u32);

/// Vector sizes up to this many bytes take the small-vector fallback
/// algorithms — the same switch point the benchmark harness uses for its
/// binomial baselines, so a degraded answer and the harness baseline are
/// literally the same schedule.
pub const FALLBACK_SMALL_VECTOR_THRESHOLD: u64 = 32 * 1024;

/// Distinguished cache slots for the small-/large-vector fallback
/// schedules. Real slots index into a table's entry list and can never
/// reach these values.
const FALLBACK_SLOT_SMALL: u32 = u32::MAX;
const FALLBACK_SLOT_LARGE: u32 = u32::MAX - 1;

/// Base of the distinguished cache slots for shrink-and-retry recovery
/// compiles: the recovery of table slot `i` caches under slot
/// `RECOVERY_SLOT_BASE - 2i - size_class`, keyed together with the
/// *shrunk* rank count. Real slots count up from 0 and the fallback slots
/// sit at `u32::MAX` and `u32::MAX - 1`, so the families can never collide
/// for any table the tuner emits.
const RECOVERY_SLOT_BASE: u32 = u32::MAX - 2;

/// The binomial-baseline algorithm served while an entry's circuit breaker
/// is open: [`bine_sched::binomial_default`] at the harness's small-vector
/// switch point. Always buildable at the rank counts the tables cover, so
/// a degraded request gets the textbook MPI default instead of an error.
pub fn fallback_pick(collective: Collective, bytes: u64) -> &'static str {
    binomial_default(collective, bytes <= FALLBACK_SMALL_VECTOR_THRESHOLD)
}

/// How a crash-tolerant request (see
/// [`ServiceSelector::try_execute_recovering_on`]) was answered.
#[derive(Debug)]
pub enum Served {
    /// No dead rank stalled the tuned pick: final block stores of every
    /// rank of the full communicator.
    Full(Vec<BlockStore>),
    /// A dead rank stalled the run mid-collective; the service shrank the
    /// communicator to the survivors and re-executed there.
    Recovered(Recovery),
}

impl Served {
    /// The final block stores, indexed by rank of whichever communicator
    /// actually completed (the full one, or the shrunk one after a
    /// recovery — see [`Recovery::map`] to translate).
    pub fn finals(&self) -> &[BlockStore] {
        match self {
            Served::Full(finals) => finals,
            Served::Recovered(r) => &r.finals,
        }
    }

    /// Whether this answer came from the shrink-and-retry ladder.
    pub fn is_recovered(&self) -> bool {
        matches!(self, Served::Recovered(_))
    }
}

/// A successful shrink-and-retry: the ULFM-style recovery the service runs
/// when a dead rank stalls the tuned pick. The collective was re-invoked
/// over the dense survivor communicator, with every survivor
/// re-contributing its input under its new rank — so `finals[new]` is
/// exactly what a fresh run of `schedule` at `map.num_survivors()` ranks
/// produces, bit for bit.
#[derive(Debug)]
pub struct Recovery {
    /// Final block stores of the shrunk run, indexed by **new** (dense)
    /// rank; translate with [`Recovery::map`].
    pub finals: Vec<BlockStore>,
    /// The order-preserving survivor bijection (old rank ↔ new rank).
    pub map: RankMap,
    /// The schedule rebuilt over the survivors (for validation, traffic
    /// accounting, or building matching initial states).
    pub schedule: Schedule,
    /// The pick actually built at the shrunk size: the slot's own pick
    /// when it builds there, otherwise the binomial [`fallback_pick`] or
    /// the collective's linear any-rank-count algorithm.
    pub pick: String,
    /// The typed stall that triggered the recovery.
    pub error: ExecError,
}

/// Knobs of the degradation ladder in [`ServiceSelector::compiled`]:
/// bounded follower waits, leader retries with capped exponential backoff,
/// and a per-entry circuit breaker guarding the binomial fallback. The
/// defaults are generous enough that a healthy service never degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// How long a follower blocks on another thread's in-flight compile
    /// before giving up and serving the fallback pick. A timed-out wait
    /// also counts one failure against the entry's breaker: a permanently
    /// stalled leader must eventually trip it.
    pub flight_timeout: Duration,
    /// How many times a leader retries a panicking compile before the
    /// leadership counts as failed (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// [`DegradePolicy::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound of the exponential backoff.
    pub backoff_cap: Duration,
    /// Consecutive failed leaderships (not individual retries) that trip
    /// the entry's breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker serves the fallback unconditionally before
    /// a single request is let through as a half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            flight_timeout: Duration::from_secs(5),
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// One compile attempt about to run, handed to the hook installed with
/// [`ServiceSelector::with_compile_hook`]. The hook runs inside the
/// leader's `catch_unwind` scope, so a panicking hook is exactly an
/// injected compile failure (and a blocking hook a stalled leader) — the
/// levers the chaos tests and `chaos_bench` pull. Fallback compiles never
/// run the hook: the degraded path must stay unkillable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileAttempt {
    /// Index of the system the entry belongs to.
    pub system: usize,
    /// Collective of the entry.
    pub collective: Collective,
    /// Rank count the schedule is being built for.
    pub nodes: usize,
    /// 0 on the leadership's first try, `k` on its `k`-th retry.
    pub attempt: u32,
}

/// Observer invoked before every primary compile attempt; see
/// [`CompileAttempt`].
pub type CompileHook = Arc<dyn Fn(&CompileAttempt) + Send + Sync>;

/// Backoff slept before the `attempt`-th retry (1-based):
/// `base · 2^(attempt−1)`, capped.
fn backoff(policy: &DegradePolicy, attempt: u32) -> Duration {
    let doublings = attempt.saturating_sub(1).min(20);
    policy
        .backoff_base
        .saturating_mul(1u32 << doublings)
        .min(policy.backoff_cap)
}

struct CacheLine {
    key: Key,
    compiled: Arc<CompiledSchedule>,
    last_used: u64,
}

/// The single-flight handle one leader publishes per in-flight compile.
/// Followers block on the condvar until the leader settles the result.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    /// `None` when the pick was deterministically not buildable at this
    /// rank count — a follower would have reached the same `None`.
    Done(Option<Arc<CompiledSchedule>>),
    /// The leader panicked mid-compile: the outcome is *unknown*, not
    /// "unbuildable". Followers re-enter the request path and retry
    /// (typically becoming the next leader and hitting the same panic in
    /// their own thread), so a crash is never misreported as a permanently
    /// unservable configuration.
    Abandoned,
}

/// What a follower observed when its flight settled (or didn't).
enum FlightOutcome {
    Done(Option<Arc<CompiledSchedule>>),
    Abandoned,
    /// The flight was still pending when the follower's bounded wait
    /// expired: the leader is stalled (or just slower than the budget).
    TimedOut,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    /// Blocks until the flight settles or `timeout` elapses. The deadline
    /// is absolute: spurious condvar wakeups re-wait only for the
    /// remainder, so a stalled leader can never strand a follower past it.
    fn wait_timeout(&self, timeout: Duration) -> FlightOutcome {
        let deadline = Instant::now() + timeout;
        let mut state = lock_any(&self.state);
        loop {
            match &*state {
                FlightState::Done(result) => return FlightOutcome::Done(result.clone()),
                FlightState::Abandoned => return FlightOutcome::Abandoned,
                FlightState::Pending => {
                    let now = Instant::now();
                    if now >= deadline {
                        return FlightOutcome::TimedOut;
                    }
                    state = wait_any_timeout(&self.done, state, deadline - now);
                }
            }
        }
    }

    fn settle(&self, state: FlightState) {
        *lock_any(&self.state) = state;
        self.done.notify_all();
    }
}

/// Per-entry circuit-breaker state, kept in the entry's shard.
enum Breaker {
    /// Normal service, counting consecutive failed leaderships.
    Closed { consecutive_failures: u32 },
    /// Tripped: requests serve the fallback until the cooldown elapses,
    /// when one request is let through as a half-open probe.
    Open { since: Instant },
    /// A probe compile is running; everyone else keeps getting the
    /// fallback so a still-broken entry cannot re-stall the service.
    HalfOpen,
}

/// How one request participates in resolving a cache miss.
enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
    /// The entry's breaker is open (or probing): skip straight to the
    /// fallback pick without touching the flight machinery.
    Degraded,
}

/// The adaptive configuration installed by
/// [`ServiceSelector::with_adaptation`]; absent on a stock service, whose
/// behaviour is then bit-identical to the pre-adaptive serving layer.
struct AdaptConfig {
    policy: AdaptPolicy,
    reevaluator: Reevaluator,
}

/// Per-entry adaptive state, kept in the entry's shard exactly like the
/// compile breakers: observed-cost histogram, the active override (if any),
/// the single-flight re-evaluation marker and the re-evaluation circuit
/// breaker. All mutations happen under the stripe lock the hot path
/// already holds; re-evaluations themselves run outside it.
struct AdaptEntry {
    key: Key,
    /// Observed per-pick costs since the last promotion/revert/vindication.
    hist: LogHistogram,
    override_state: Option<OverrideState>,
    /// Single-flight marker: while one observer re-evaluates this entry,
    /// concurrent observers skip — they never block on the re-evaluation.
    reeval_in_flight: bool,
    /// Re-evaluation circuit breaker — the same [`Breaker`] machinery as
    /// the compile path, driven by the same [`DegradePolicy`] thresholds:
    /// repeated failed (panicking or unscorable) re-evaluations trip it
    /// open and the entry stops adapting until the cooldown lets one
    /// half-open probe through. The entry keeps *serving* throughout.
    breaker: Breaker,
}

impl AdaptEntry {
    fn new(key: Key) -> AdaptEntry {
        AdaptEntry {
            key,
            hist: LogHistogram::new(),
            override_state: None,
            reeval_in_flight: false,
            breaker: Breaker::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// One failed re-evaluation against this entry's breaker; trips it
    /// open at `threshold` consecutive failures (a half-open probe that
    /// fails re-opens immediately).
    fn record_reeval_failure(&mut self, threshold: u32) {
        self.breaker = match self.breaker {
            Breaker::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= threshold {
                    Breaker::Open {
                        since: Instant::now(),
                    }
                } else {
                    Breaker::Closed {
                        consecutive_failures: failures,
                    }
                }
            }
            Breaker::HalfOpen | Breaker::Open { .. } => Breaker::Open {
                since: Instant::now(),
            },
        };
    }
}

/// A challenger currently shadowing the committed pick of one cache entry.
/// The pre-compiled schedule makes the overridden warm path an `Arc` clone
/// — no allocation, no rebuild.
struct OverrideState {
    pick: String,
    compiled: Arc<CompiledSchedule>,
    epoch: u64,
    samples: u64,
    observed_mean_us: f64,
    modelled_us: f64,
    challenger_us: f64,
    /// Observations since the last committed-pick re-check.
    since_recheck: u64,
}

/// What [`ServiceSelector::observe_at`] decided under the stripe lock, to
/// be acted on outside it.
enum ObserveAction {
    /// Nothing to do (healthy entry, in-flight re-eval, open breaker, …).
    None,
    /// Run a re-evaluation: a fresh divergence, or an override's periodic
    /// committed-pick re-check.
    Reevaluate,
}

/// Locks a mutex, tolerating poison: a panicking compile must not turn
/// every later request on the same shard into a secondary panic.
fn lock_any<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn wait_any_timeout<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
    timeout: Duration,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

struct ShardState {
    lines: Vec<CacheLine>,
    in_flight: Vec<(Key, Arc<Flight>)>,
    /// Circuit breakers of entries that have failed recently. An entry with
    /// no record here is healthy; successful compiles remove the record, so
    /// the vector stays as small as the set of currently-broken entries.
    breakers: Vec<(Key, Breaker)>,
    /// Adaptive state of this shard's entries (empty unless adaptation is
    /// enabled and an entry has been observed).
    adapt: Vec<AdaptEntry>,
    clock: u64,
    /// Stats live per shard, as plain integers under the stripe lock the
    /// hot path already holds — global atomic counters would put one cache
    /// line ping-ponging between every core on every request.
    hits: u64,
    misses: u64,
    compilations: u64,
    fallbacks: u64,
    timeouts: u64,
    retries: u64,
    overrides: u64,
    reverts: u64,
    reevals: u64,
    stalls: u64,
    recoveries: u64,
}

impl ShardState {
    fn new() -> Mutex<ShardState> {
        Mutex::new(ShardState {
            lines: Vec::new(),
            in_flight: Vec::new(),
            breakers: Vec::new(),
            adapt: Vec::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            compilations: 0,
            fallbacks: 0,
            timeouts: 0,
            retries: 0,
            overrides: 0,
            reverts: 0,
            reevals: 0,
            stalls: 0,
            recoveries: 0,
        })
    }

    /// The adaptive state of `key`, created on first observation.
    fn adapt_entry_mut(&mut self, key: Key) -> &mut AdaptEntry {
        match self.adapt.iter().position(|e| e.key == key) {
            Some(i) => &mut self.adapt[i],
            None => {
                self.adapt.push(AdaptEntry::new(key));
                self.adapt.last_mut().unwrap()
            }
        }
    }

    /// Records one failed leadership (or timed-out follower wait) against
    /// `key`'s breaker, tripping it open at `threshold` consecutive
    /// failures. A failure while half-open re-opens with a fresh cooldown.
    fn record_failure(&mut self, key: Key, threshold: u32) {
        let breaker = match self.breakers.iter_mut().find(|(k, _)| *k == key) {
            Some((_, b)) => b,
            None => {
                self.breakers.push((
                    key,
                    Breaker::Closed {
                        consecutive_failures: 0,
                    },
                ));
                &mut self.breakers.last_mut().unwrap().1
            }
        };
        *breaker = match *breaker {
            Breaker::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= threshold {
                    Breaker::Open {
                        since: Instant::now(),
                    }
                } else {
                    Breaker::Closed {
                        consecutive_failures: failures,
                    }
                }
            }
            Breaker::HalfOpen | Breaker::Open { .. } => Breaker::Open {
                since: Instant::now(),
            },
        };
    }

    /// A successful compile closes and forgets the entry's breaker.
    fn clear_breaker(&mut self, key: &Key) {
        self.breakers.retain(|(k, _)| k != key);
    }

    /// Evicts least-recently-used lines until at most `max_lines` remain.
    /// Never panics: an empty cache simply has no victim.
    fn evict_down_to(&mut self, max_lines: usize) {
        while self.lines.len() > max_lines {
            let victim = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.lines.swap_remove(i);
                }
                None => break,
            }
        }
    }

    /// Inserts a line, first evicting down to `capacity − 1` so the cache
    /// never exceeds `capacity` lines.
    fn insert(&mut self, key: Key, compiled: Arc<CompiledSchedule>, capacity: usize) {
        self.clock += 1;
        self.evict_down_to(capacity.saturating_sub(1));
        self.lines.push(CacheLine {
            key,
            compiled,
            last_used: self.clock,
        });
    }
}

/// Leader-side completion guard: however the leader exits — success, an
/// unbuildable pick, or a panic inside `compile` — the in-flight handle is
/// removed from the shard and settled, so followers can never deadlock on
/// an abandoned flight. On success the compiled schedule is inserted into
/// the shard cache *in the same lock acquisition* that retires the flight:
/// there is no window in which a third thread sees neither the cache line
/// nor the in-flight handle and compiles a second time. On unwind the
/// flight settles as [`FlightState::Abandoned`], sending followers back to
/// retry rather than handing them a false "unbuildable".
struct FlightGuard<'a> {
    shard: &'a Mutex<ShardState>,
    key: Key,
    flight: Arc<Flight>,
    capacity: usize,
    /// Set by the leader on completion; still unset on unwind.
    result: Option<Option<Arc<CompiledSchedule>>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let result = self.result.take();
        {
            let mut shard = lock_any(self.shard);
            shard.in_flight.retain(|(k, _)| *k != self.key);
            if let Some(Some(compiled)) = &result {
                shard.insert(self.key, Arc::clone(compiled), self.capacity);
            }
        }
        self.flight.settle(match result {
            Some(result) => FlightState::Done(result),
            None => FlightState::Abandoned,
        });
    }
}

/// A thread-safe selection service over one or more systems' decision
/// tables: `&self` end-to-end lookup, a sharded compiled-schedule cache
/// with single-flight compilation, and batch execution on the shared
/// executor pool. See the [module docs](crate::service) for the design.
pub struct ServiceSelector {
    /// One immutable pre-indexed table per loaded system, in load order.
    systems: Vec<Arc<SelectorIndex>>,
    /// Slugs of the loaded systems (parallel to `systems`), for by-name
    /// resolution without re-slugging the stored display names per query.
    slugs: Vec<String>,
    shards: Vec<Mutex<ShardState>>,
    shard_capacity: usize,
    policy: DegradePolicy,
    compile_hook: Option<CompileHook>,
    /// Adaptive tuning, off by default; see
    /// [`ServiceSelector::with_adaptation`].
    adapt: Option<AdaptConfig>,
    /// Service-wide override epoch: every promotion gets the next value,
    /// so overlay dumps order deterministically across shards.
    adapt_epoch: AtomicU64,
}

impl ServiceSelector {
    /// Builds a service over pre-indexed tables (shared with any existing
    /// [`crate::Selector`]s via the `Arc`s).
    pub fn from_indexes(indexes: Vec<Arc<SelectorIndex>>) -> ServiceSelector {
        let slugs = indexes.iter().map(|i| slug(i.system())).collect();
        ServiceSelector {
            systems: indexes,
            slugs,
            shards: (0..DEFAULT_SHARDS).map(|_| ShardState::new()).collect(),
            shard_capacity: DEFAULT_CACHE_CAPACITY,
            policy: DegradePolicy::default(),
            compile_hook: None,
            adapt: None,
            adapt_epoch: AtomicU64::new(0),
        }
    }

    /// Builds a service from in-memory decision tables.
    pub fn from_tables(tables: &[DecisionTable]) -> ServiceSelector {
        Self::from_indexes(
            tables
                .iter()
                .map(|t| Arc::new(SelectorIndex::from_table(t)))
                .collect(),
        )
    }

    /// Loads every committed decision table (`*.json`) from the tuning
    /// directory resolved by [`crate::default_tuning_dir`] — all four paper
    /// systems in the stock checkout.
    pub fn load_default() -> Result<ServiceSelector, String> {
        Self::load_dir(&crate::default_tuning_dir()?)
    }

    /// Loads every `*.json` decision table under `dir`, sorted by file name
    /// so system indices are deterministic.
    pub fn load_dir(dir: &Path) -> Result<ServiceSelector, String> {
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read tuning directory {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no decision tables (*.json) in {}", dir.display()));
        }
        let mut tables = Vec::with_capacity(paths.len());
        for path in &paths {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read decision table {}: {e}", path.display()))?;
            tables.push(
                DecisionTable::from_json(&text)
                    .map_err(|e| format!("cannot parse {}: {e}", path.display()))?,
            );
        }
        Ok(Self::from_tables(&tables))
    }

    /// Sets the number of cache shards (clamped to ≥ 1). Call before
    /// serving: rebuilding the stripes drops any cached schedules.
    pub fn with_shards(mut self, shards: usize) -> ServiceSelector {
        self.shards = (0..shards.max(1)).map(|_| ShardState::new()).collect();
        self
    }

    /// Sets the per-shard LRU capacity (clamped to ≥ 1, like
    /// [`crate::Selector::with_cache_capacity`]).
    pub fn with_shard_capacity(mut self, capacity: usize) -> ServiceSelector {
        self.shard_capacity = capacity.max(1);
        for shard in &self.shards {
            lock_any(shard).evict_down_to(self.shard_capacity);
        }
        self
    }

    /// Sets the degradation policy: follower wait bound, retry/backoff
    /// schedule and circuit-breaker thresholds. See [`DegradePolicy`].
    pub fn with_policy(mut self, policy: DegradePolicy) -> ServiceSelector {
        self.policy = policy;
        self
    }

    /// Installs an observer run before every *primary* compile attempt
    /// (never before fallback compiles). A panicking hook is an injected
    /// compile failure, a blocking one a stalled leader — the fault levers
    /// of the chaos tests and the `chaos_bench` binary.
    pub fn with_compile_hook(mut self, hook: CompileHook) -> ServiceSelector {
        self.compile_hook = Some(hook);
        self
    }

    /// Enables online adaptive tuning: the service records per-pick
    /// observed timings (fed by [`ServiceSelector::observe`] and the
    /// `execute` family), compares them against the committed modelled
    /// scores, and when an entry diverges past [`AdaptPolicy::divergence`]
    /// re-evaluates challengers through `reevaluator` — promoting a winner
    /// into an epoch-versioned overlay on top of the immutable committed
    /// tables. The tables themselves are never mutated; see
    /// [`crate::adapt`] for the invariants and
    /// [`ServiceSelector::overlay`] for the observability dump.
    pub fn with_adaptation(
        mut self,
        policy: AdaptPolicy,
        reevaluator: Reevaluator,
    ) -> ServiceSelector {
        self.adapt = Some(AdaptConfig {
            policy,
            reevaluator,
        });
        self
    }

    /// `true` when [`ServiceSelector::with_adaptation`] was called. A
    /// service without adaptation never consults the overlay: its picks
    /// are bit-identical to the serial [`crate::Selector`]'s.
    pub fn adaptation_enabled(&self) -> bool {
        self.adapt.is_some()
    }

    /// The active degradation policy.
    pub fn policy(&self) -> &DegradePolicy {
        &self.policy
    }

    /// Display names of the loaded systems, in index order.
    pub fn system_names(&self) -> Vec<&str> {
        self.systems.iter().map(|i| i.system()).collect()
    }

    /// Index of a system by display name or slug (`"MareNostrum 5"` and
    /// `"marenostrum5"` both resolve).
    pub fn system_index(&self, system: &str) -> Option<usize> {
        let wanted = slug(system);
        self.slugs.iter().position(|s| *s == wanted)
    }

    /// Like [`ServiceSelector::system_index`], but an unknown system is an
    /// `Err` naming every loaded system — so a typo'd request says what the
    /// service can actually answer for instead of a bare `None`.
    pub fn resolve_system(&self, system: &str) -> Result<usize, String> {
        self.system_index(system).ok_or_else(|| {
            format!(
                "unknown system {system:?}; loaded systems: {}",
                self.system_names().join(", ")
            )
        })
    }

    /// The shared index of system `sys`, if loaded.
    pub fn index(&self, sys: usize) -> Option<&Arc<SelectorIndex>> {
        self.systems.get(sys)
    }

    /// The tuned `(algorithm, segments)` for a query against `system`
    /// (by name or slug) — same floor-breakpoint semantics, same code and
    /// data as the serial [`crate::Selector::choose`].
    pub fn choose(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.choose_at(self.system_index(system)?, collective, nodes, bytes)
    }

    /// [`ServiceSelector::choose`] by system index (skips the name lookup
    /// on hot paths).
    pub fn choose_at(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.systems.get(sys)?.choose(collective, nodes, bytes)
    }

    /// The tuned pick for an irregular (v-variant) query against `system`:
    /// resolved on the grid tuned for `dist`, falling back to the regular
    /// grid when the table carries none (see
    /// [`crate::SelectorIndex::choose_irregular`]). `&self` and
    /// allocation-free, like [`ServiceSelector::choose`].
    pub fn choose_irregular(
        &self,
        system: &str,
        collective: Collective,
        dist: bine_sched::SizeDist,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.choose_irregular_at(self.system_index(system)?, collective, dist, nodes, bytes)
    }

    /// [`ServiceSelector::choose_irregular`] by system index.
    pub fn choose_irregular_at(
        &self,
        sys: usize,
        collective: Collective,
        dist: bine_sched::SizeDist,
        nodes: usize,
        bytes: u64,
    ) -> Option<Tuned<'_>> {
        self.systems
            .get(sys)?
            .choose_irregular(collective, dist, nodes, bytes)
    }

    /// The compiled schedule of the tuned pick, from the sharded cache or
    /// compiled once under single-flight. `&self`: safe to call from any
    /// number of threads over one shared service.
    ///
    /// Degradation: when the entry's circuit breaker is open (repeated
    /// compile failures) or a follower's bounded wait times out, the
    /// binomial [`fallback_pick`] is served instead of the tuned pick —
    /// the request still gets a correct, executable schedule. See
    /// [`DegradePolicy`] and the fallback/timeout/retry counters.
    ///
    /// Rooted collectives are built with root 0, exactly as in
    /// [`crate::Selector::compiled`].
    pub fn compiled(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        self.compiled_at(self.system_index(system)?, collective, nodes, bytes)
    }

    /// [`ServiceSelector::compiled`] by system index.
    pub fn compiled_at(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        let index = self.systems.get(sys)?;
        let slot = index.slot_index(collective, nodes, bytes)?;
        let key: Key = (sys as u32, collective, nodes, slot);
        let shard = &self.shards[self.shard_of(&key)];

        loop {
            let role = {
                let mut state = lock_any(shard);
                state.clock += 1;
                let clock = state.clock;
                // Adaptive override, ahead of the committed cache line: an
                // entry the feedback loop has overridden serves its
                // pre-compiled challenger (an `Arc` clone, no allocation)
                // until the override is reverted.
                if self.adapt.is_some() {
                    let overridden = state
                        .adapt
                        .iter()
                        .find(|e| e.key == key)
                        .and_then(|e| e.override_state.as_ref())
                        .map(|ov| Arc::clone(&ov.compiled));
                    if let Some(compiled) = overridden {
                        state.hits += 1;
                        return Some(compiled);
                    }
                }
                if let Some(pos) = state.lines.iter().position(|l| l.key == key) {
                    state.lines[pos].last_used = clock;
                    state.hits += 1;
                    return Some(state.lines[pos].compiled.clone());
                }
                // Breaker consult, after the cache: a published line is
                // always a successful compile and safe to serve.
                let mut degraded = false;
                if let Some((_, breaker)) = state.breakers.iter_mut().find(|(k, _)| *k == key) {
                    match *breaker {
                        Breaker::Open { since }
                            if since.elapsed() >= self.policy.breaker_cooldown =>
                        {
                            // Cooldown over: this request becomes the
                            // half-open probe and runs a real compile;
                            // concurrent requests keep degrading until the
                            // probe settles the breaker one way or the other.
                            *breaker = Breaker::HalfOpen;
                        }
                        Breaker::Open { .. } | Breaker::HalfOpen => degraded = true,
                        Breaker::Closed { .. } => {}
                    }
                }
                if degraded {
                    state.fallbacks += 1;
                    Role::Degraded
                } else {
                    state.misses += 1;
                    match state.in_flight.iter().find(|(k, _)| *k == key) {
                        Some((_, flight)) => Role::Follower(Arc::clone(flight)),
                        None => {
                            let flight = Arc::new(Flight::new());
                            state.in_flight.push((key, Arc::clone(&flight)));
                            state.compilations += 1;
                            Role::Leader(flight)
                        }
                    }
                }
            };
            match role {
                Role::Degraded => return self.fallback_compiled(sys, collective, nodes, bytes),
                Role::Follower(flight) => {
                    match flight.wait_timeout(self.policy.flight_timeout) {
                        FlightOutcome::Done(result) => return result,
                        // The leader panicked: its outcome says nothing
                        // about this entry. Retry — re-checking the breaker,
                        // and typically becoming the next leader.
                        FlightOutcome::Abandoned => continue,
                        // The leader is stalled past the wait budget. Count
                        // the timeout as a failure against the entry — a
                        // permanently stalled leader must eventually trip
                        // the breaker — and serve the fallback now.
                        FlightOutcome::TimedOut => {
                            {
                                let mut state = lock_any(shard);
                                state.timeouts += 1;
                                state.fallbacks += 1;
                                state.record_failure(key, self.policy.breaker_threshold);
                            }
                            return self.fallback_compiled(sys, collective, nodes, bytes);
                        }
                    }
                }
                Role::Leader(flight) => {
                    let mut guard = FlightGuard {
                        shard,
                        key,
                        flight,
                        capacity: self.shard_capacity,
                        result: None,
                    };
                    // Outside the shard lock: other entries of this shard
                    // stay servable while this one compiles.
                    match self.compile_with_retries(sys, index, collective, nodes, slot, shard) {
                        Ok(compiled) => {
                            guard.result = Some(compiled.clone());
                            drop(guard); // retire the flight + publish the line
                            lock_any(shard).clear_breaker(&key);
                            return compiled;
                        }
                        // Every attempt panicked. Record the failure
                        // *before* abandoning the flight, so followers wake
                        // into an up-to-date breaker; then this thread
                        // degrades too. The cache is never touched, so a
                        // poisoned compile can never be published.
                        Err(()) => {
                            {
                                let mut state = lock_any(shard);
                                state.fallbacks += 1;
                                state.record_failure(key, self.policy.breaker_threshold);
                            }
                            drop(guard); // abandon: wake followers to re-enter
                            return self.fallback_compiled(sys, collective, nodes, bytes);
                        }
                    }
                }
            }
        }
    }

    /// Runs the leader's compile, retrying panics up to
    /// [`DegradePolicy::max_retries`] times with capped exponential
    /// backoff. `Ok` carries the compile's own verdict (`None` = pick not
    /// buildable at this rank count — deterministic, never retried); `Err`
    /// means every attempt panicked.
    fn compile_with_retries(
        &self,
        sys: usize,
        index: &SelectorIndex,
        collective: Collective,
        nodes: usize,
        slot: u32,
        shard: &Mutex<ShardState>,
    ) -> Result<Option<Arc<CompiledSchedule>>, ()> {
        for attempt in 0..=self.policy.max_retries {
            if attempt > 0 {
                // Count the retry exactly when it starts; back off holding
                // no locks (followers are parked on the flight condvar).
                lock_any(shard).retries += 1;
                std::thread::sleep(backoff(&self.policy, attempt));
            }
            let probe = CompileAttempt {
                system: sys,
                collective,
                nodes,
                attempt,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(hook) = &self.compile_hook {
                    hook(&probe);
                }
                index.compile_slot(collective, nodes, slot)
            }));
            if let Ok(result) = outcome {
                return Ok(result);
            }
        }
        Err(())
    }

    /// Compiles (or fetches) the binomial fallback for a degraded request.
    /// Cached under distinguished slots in the regular sharded cache and
    /// compiled under single-flight like any other entry — but without the
    /// compile hook or retries, so the degraded path cannot itself be
    /// fault-injected or stalled indefinitely.
    fn fallback_compiled(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
    ) -> Option<Arc<CompiledSchedule>> {
        let slot = if bytes <= FALLBACK_SMALL_VECTOR_THRESHOLD {
            FALLBACK_SLOT_SMALL
        } else {
            FALLBACK_SLOT_LARGE
        };
        let key: Key = (sys as u32, collective, nodes, slot);
        let shard = &self.shards[self.shard_of(&key)];
        loop {
            let role = {
                let mut state = lock_any(shard);
                state.clock += 1;
                let clock = state.clock;
                if let Some(pos) = state.lines.iter().position(|l| l.key == key) {
                    state.lines[pos].last_used = clock;
                    state.hits += 1;
                    return Some(state.lines[pos].compiled.clone());
                }
                state.misses += 1;
                match state.in_flight.iter().find(|(k, _)| *k == key) {
                    Some((_, flight)) => Role::Follower(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.in_flight.push((key, Arc::clone(&flight)));
                        state.compilations += 1;
                        Role::Leader(flight)
                    }
                }
            };
            match role {
                Role::Degraded => unreachable!("the fallback path has no breaker"),
                Role::Follower(flight) => {
                    match flight.wait_timeout(self.policy.flight_timeout) {
                        FlightOutcome::Done(result) => return result,
                        FlightOutcome::Abandoned => continue,
                        // Nothing further to degrade to: compile privately
                        // (cheap, uncached) rather than wait any longer.
                        FlightOutcome::TimedOut => {
                            return build(collective, fallback_pick(collective, bytes), nodes, 0)
                                .map(|s| Arc::new(s.compile()));
                        }
                    }
                }
                Role::Leader(flight) => {
                    let mut guard = FlightGuard {
                        shard,
                        key,
                        flight,
                        capacity: self.shard_capacity,
                        result: None,
                    };
                    let compiled = build(collective, fallback_pick(collective, bytes), nodes, 0)
                        .map(|s| Arc::new(s.compile()));
                    guard.result = Some(compiled.clone());
                    drop(guard);
                    return compiled;
                }
            }
        }
    }

    /// Feeds one observed per-pick cost into the adaptive feedback loop:
    /// the execution wall time of a served schedule, or the simulated cost
    /// when the caller runs picks through the DES. A no-op unless
    /// [`ServiceSelector::with_adaptation`] enabled adaptation (and on
    /// unresolvable queries). The `execute` family calls this itself;
    /// callers that resolve schedules via [`ServiceSelector::compiled`]
    /// and run them elsewhere report their timings here.
    ///
    /// The warm path is allocation-free: the observation lands in a
    /// fixed-bucket histogram under the stripe lock the request path
    /// already uses. When the entry's observed mean diverges past
    /// [`AdaptPolicy::divergence`], this call runs the re-evaluation
    /// before returning (single-flight: concurrent observers skip rather
    /// than block, and repeated failures trip a per-entry breaker).
    pub fn observe(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        timing: ObservedTiming,
    ) {
        if let Some(sys) = self.system_index(system) {
            self.observe_at(sys, collective, nodes, bytes, timing);
        }
    }

    /// [`ServiceSelector::observe`] by system index.
    pub fn observe_at(
        &self,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        timing: ObservedTiming,
    ) {
        let Some(cfg) = &self.adapt else { return };
        let Some(index) = self.systems.get(sys) else {
            return;
        };
        let Some(slot_idx) = index.slot_index(collective, nodes, bytes) else {
            return;
        };
        let modelled = index.slot(slot_idx).time_us;
        let key: Key = (sys as u32, collective, nodes, slot_idx);
        let shard = &self.shards[self.shard_of(&key)];
        let reevaluate = {
            let mut state = lock_any(shard);
            let action = {
                let e = state.adapt_entry_mut(key);
                e.hist.record(timing.time_us);
                if e.reeval_in_flight {
                    // Single-flight: someone is already re-evaluating this
                    // entry; never block the observer behind it.
                    ObserveAction::None
                } else if let Some(ov) = &mut e.override_state {
                    ov.since_recheck += 1;
                    if ov.since_recheck >= cfg.policy.recheck_interval {
                        ov.since_recheck = 0;
                        e.reeval_in_flight = true;
                        ObserveAction::Reevaluate
                    } else {
                        ObserveAction::None
                    }
                } else {
                    let diverged = e.hist.count() >= cfg.policy.min_samples
                        && modelled.is_finite()
                        && modelled > 0.0
                        && e.hist.mean_us() >= cfg.policy.divergence * modelled;
                    let allowed = diverged
                        && match e.breaker {
                            Breaker::Closed { .. } => true,
                            Breaker::Open { since }
                                if since.elapsed() >= self.policy.breaker_cooldown =>
                            {
                                // Cooldown over: this observation becomes
                                // the half-open re-evaluation probe.
                                e.breaker = Breaker::HalfOpen;
                                true
                            }
                            Breaker::Open { .. } | Breaker::HalfOpen => false,
                        };
                    if allowed {
                        e.reeval_in_flight = true;
                        ObserveAction::Reevaluate
                    } else {
                        ObserveAction::None
                    }
                }
            };
            match action {
                ObserveAction::Reevaluate => {
                    state.reevals += 1;
                    true
                }
                ObserveAction::None => false,
            }
        };
        if reevaluate {
            // Outside the stripe lock: the entry (and its whole shard)
            // keeps serving while challengers are scored.
            self.run_reevaluation(cfg, key, index, collective, nodes, slot_idx, shard);
        }
    }

    /// Runs one single-flight re-evaluation of a diverged (or periodically
    /// re-checked) entry and settles the outcome under the stripe lock:
    /// install a winning challenger as an override, refresh or revert an
    /// existing override, or count a failure against the entry's breaker.
    /// The challenger search runs under `catch_unwind`, so a panicking
    /// scorer degrades into a breaker strike instead of poisoning serving.
    #[allow(clippy::too_many_arguments)]
    fn run_reevaluation(
        &self,
        cfg: &AdaptConfig,
        key: Key,
        index: &SelectorIndex,
        collective: Collective,
        nodes: usize,
        slot_idx: u32,
        shard: &Mutex<ShardState>,
    ) {
        let slot = index.slot(slot_idx);
        let committed = slot.pick.clone();
        let grid_bytes = slot.vector_bytes;
        let modelled = slot.time_us;
        // Score challengers at the committed grid point's vector size and
        // pre-compile a non-incumbent winner, all outside any lock. The
        // provider set lets a challenger enumeration include synthesized
        // names, not just catalog ones.
        let providers = index.providers().clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (winner, score) = cfg
                .reevaluator
                .best(&committed, collective, nodes, grid_bytes)?;
            if winner == committed {
                Some((winner, score, None))
            } else {
                let compiled = Arc::new(providers.build(collective, &winner, nodes, 0)?.compile());
                Some((winner, score, Some(compiled)))
            }
        }));
        let mut state = lock_any(shard);
        let mut installed = false;
        let mut reverted = false;
        {
            let e = state.adapt_entry_mut(key);
            e.reeval_in_flight = false;
            match outcome {
                Ok(Some((winner, score, compiled))) => {
                    e.breaker = Breaker::Closed {
                        consecutive_failures: 0,
                    };
                    if winner == committed {
                        // The committed pick won: revert any override and
                        // start a fresh observation window.
                        reverted = e.override_state.take().is_some();
                        e.hist.reset();
                    } else if let Some(ov) =
                        e.override_state.as_mut().filter(|ov| ov.pick == winner)
                    {
                        // Recheck confirmed the active override.
                        ov.challenger_us = score;
                        e.hist.reset();
                    } else {
                        let samples = e.hist.count();
                        let observed_mean_us = e.hist.mean_us();
                        e.hist.reset();
                        e.override_state = Some(OverrideState {
                            pick: winner,
                            compiled: compiled.expect("non-incumbent winner is pre-compiled"),
                            epoch: self.adapt_epoch.fetch_add(1, Ordering::Relaxed) + 1,
                            samples,
                            observed_mean_us,
                            modelled_us: modelled,
                            challenger_us: score,
                            since_recheck: 0,
                        });
                        installed = true;
                    }
                }
                // Nothing scorable, winner unbuildable, or the scorer
                // panicked: a failed re-evaluation. The entry keeps serving
                // its current pick; repeated failures trip the breaker.
                Ok(None) | Err(_) => e.record_reeval_failure(self.policy.breaker_threshold),
            }
        }
        if installed {
            state.overrides += 1;
        }
        if reverted {
            state.reverts += 1;
        }
    }

    /// Resolves the tuned pick, compiles (or fetches) its schedule and
    /// executes it over `initial` block stores on `pool`, reporting job
    /// panics as [`ExecError`] instead of unwinding. `None` when the query
    /// resolves to no table entry or the pick is not buildable at this
    /// rank count. On success the execution wall time is fed back into the
    /// adaptive loop (see [`ServiceSelector::observe`]).
    pub fn try_execute_on(
        &self,
        pool: &ExecutorPool,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Result<Vec<BlockStore>, ExecError>> {
        let sys = self.system_index(system)?;
        let compiled = self.compiled_at(sys, collective, nodes, bytes)?;
        let start = Instant::now();
        let result = pool.try_run(&compiled, initial);
        if result.is_ok() {
            self.observe_at(
                sys,
                collective,
                nodes,
                bytes,
                ObservedTiming::execution(start.elapsed().as_secs_f64() * 1e6),
            );
        }
        Some(result)
    }

    /// [`ServiceSelector::try_execute_on`] over the process-wide
    /// [`ExecutorPool::global`].
    pub fn try_execute(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Result<Vec<BlockStore>, ExecError>> {
        self.try_execute_on(
            ExecutorPool::global(),
            system,
            collective,
            nodes,
            bytes,
            initial,
        )
    }

    /// Crash-tolerant execution with shrink-and-retry recovery: resolves
    /// the tuned pick, builds its schedule and the deterministic workload
    /// (`elems_per_block` elements per block, root 0), injects `dead` as
    /// ranks crashed before the collective starts, and runs on `pool`.
    ///
    /// * When no surviving rank blocks on a dead one, the run completes
    ///   over the full communicator: [`Served::Full`].
    /// * When the executor reports [`ExecError::RankDead`], the service
    ///   shrinks the communicator to the dense survivor renumbering
    ///   ([`RankMap::dense`]) and rebuilds a schedule at the shrunk size —
    ///   the pick itself, the binomial [`fallback_pick`], or the
    ///   collective's linear any-rank-count algorithm (ring/pairwise),
    ///   whichever builds first — compiles it under a distinguished
    ///   recovery cache slot, and re-executes the collective with every
    ///   survivor re-contributing its input under its new rank:
    ///   [`Served::Recovered`]. The recovered finals are bit identical to
    ///   a direct run of the same collective at the shrunk size — pinned
    ///   by the `crash_chaos` harness.
    /// * Two stalls are unrecoverable and surface as the original typed
    ///   error: a rooted collective whose **source data** lived on a dead
    ///   root (broadcast or scatter from a crashed root 0 — no survivor
    ///   holds the payload), and a collective with no catalog algorithm at
    ///   the survivor count (the rooted collectives build only at
    ///   power-of-two sizes).
    ///
    /// `None` when the query resolves to no table entry or the pick is not
    /// buildable at `nodes` ranks. The [`ServiceSelector::stalls`] and
    /// [`ServiceSelector::recoveries`] counters make the ladder observable.
    ///
    /// # Panics
    /// Panics if a dead rank is `>= nodes` or all ranks are dead.
    #[allow(clippy::too_many_arguments)]
    pub fn try_execute_recovering_on(
        &self,
        pool: &ExecutorPool,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        elems_per_block: usize,
        dead: &[usize],
    ) -> Option<Result<Served, ExecError>> {
        let sys = self.system_index(system)?;
        let index = self.systems.get(sys)?;
        let slot = index.slot_index(collective, nodes, bytes)?;
        let pick = index.slot(slot).pick.clone();
        // Some builders panic rather than return `None` on an unsupported
        // rank count (off-grid queries can land there); both are "not
        // buildable" here. Routed through the index's provider set so
        // committed synthesized picks rebuild exactly like catalog ones.
        let providers = index.providers().clone();
        let sched = catch_unwind(AssertUnwindSafe(|| {
            providers.build(collective, &pick, nodes, 0)
        }))
        .ok()
        .flatten()?;
        let key: Key = (sys as u32, collective, nodes, slot);
        let compiled = self.cached_or_compile(key, || Arc::new(sched.compile()));
        let w = Workload::for_schedule(&sched, elems_per_block);
        match pool.try_run_with_dead(&compiled, w.initial_state(&sched), dead) {
            Ok(finals) => Some(Ok(Served::Full(finals))),
            Err(error @ ExecError::RankDead { .. }) => {
                lock_any(&self.shards[self.shard_of(&key)]).stalls += 1;
                Some(self.shrink_and_retry(
                    pool,
                    sys,
                    collective,
                    nodes,
                    bytes,
                    elems_per_block,
                    dead,
                    slot,
                    &pick,
                    error,
                ))
            }
            Err(other) => Some(Err(other)),
        }
    }

    /// [`ServiceSelector::try_execute_recovering_on`] over the process-wide
    /// [`ExecutorPool::global`].
    pub fn try_execute_recovering(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        elems_per_block: usize,
        dead: &[usize],
    ) -> Option<Result<Served, ExecError>> {
        self.try_execute_recovering_on(
            ExecutorPool::global(),
            system,
            collective,
            nodes,
            bytes,
            elems_per_block,
            dead,
        )
    }

    /// The shrink half of the recovery ladder: dense survivor renumbering,
    /// pick rebuilt at the shrunk size (binomial fallback when it does not
    /// build there), re-execution over fresh survivor contributions.
    #[allow(clippy::too_many_arguments)]
    fn shrink_and_retry(
        &self,
        pool: &ExecutorPool,
        sys: usize,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        elems_per_block: usize,
        dead: &[usize],
        slot: u32,
        pick: &str,
        error: ExecError,
    ) -> Result<Served, ExecError> {
        // A dead root's payload (broadcast/scatter source data) exists
        // nowhere else: shrinking cannot recover it. The reduction and
        // gather families re-contribute from every survivor, so they
        // recover whoever died.
        let root_holds_source = matches!(collective, Collective::Broadcast | Collective::Scatter);
        if root_holds_source && dead.contains(&0) {
            return Err(error);
        }
        let map = RankMap::dense(nodes, dead);
        let survivors = map.num_survivors();
        // Candidate picks for the shrunk size, in preference order: the
        // slot's own pick, the binomial fallback, then the linear any-p
        // algorithm of the collective (the butterfly/tree algorithms only
        // build at power-of-two rank counts, and a shrink almost always
        // lands off it). `build` panics (rather than returning `None`) on
        // an unsupported rank count for some builders, so every probe runs
        // under `catch_unwind`.
        let mut candidates: Vec<&str> = vec![pick, fallback_pick(collective, bytes)];
        match collective {
            Collective::Allreduce | Collective::Allgather | Collective::ReduceScatter => {
                candidates.push("ring");
            }
            Collective::Alltoall => candidates.push("pairwise"),
            _ => {}
        }
        // Probe through the system's provider set: a synthesized slot pick
        // recovers to itself when a view exists at the survivor count, and
        // falls through to the catalog candidates otherwise.
        let providers = self
            .systems
            .get(sys)
            .map(|i| i.providers().clone())
            .unwrap_or_default();
        let built = candidates.iter().find_map(|cand| {
            catch_unwind(AssertUnwindSafe(|| {
                providers.build(collective, cand, survivors, 0)
            }))
            .ok()
            .flatten()
            .map(|sched| (cand.to_string(), sched))
        });
        let Some((rec_pick, rec_sched)) = built else {
            // No catalog algorithm builds over this survivor count — the
            // rooted collectives have no non-pow2 builder — so the stall
            // is unrecoverable and surfaces as the original typed error.
            return Err(error);
        };
        // The winning candidate is a pure function of (slot pick,
        // collective, survivor count, fallback size class), so the
        // recovery cache slot folds in the size class next to the slot.
        let large = u32::from(bytes > FALLBACK_SMALL_VECTOR_THRESHOLD);
        let rkey: Key = (
            sys as u32,
            collective,
            survivors,
            RECOVERY_SLOT_BASE - 2 * slot - large,
        );
        let rec_compiled = self.cached_or_compile(rkey, || Arc::new(rec_sched.compile()));
        let w = Workload::for_schedule(&rec_sched, elems_per_block);
        let finals = pool.try_run(&rec_compiled, w.initial_state(&rec_sched))?;
        lock_any(&self.shards[self.shard_of(&rkey)]).recoveries += 1;
        Ok(Served::Recovered(Recovery {
            finals,
            map,
            schedule: rec_sched,
            pick: rec_pick,
            error,
        }))
    }

    /// Fetches `key` from the sharded cache, or compiles and publishes it.
    /// Used by the recovery path, whose callers have already built the
    /// `Schedule` (the expensive half) in this call anyway — so a rare
    /// duplicate compile under a cold-cache race costs less than the
    /// flight machinery, and either winner is correct (the compile is a
    /// pure function of the key).
    fn cached_or_compile(
        &self,
        key: Key,
        compile: impl FnOnce() -> Arc<CompiledSchedule>,
    ) -> Arc<CompiledSchedule> {
        let shard = &self.shards[self.shard_of(&key)];
        {
            let mut state = lock_any(shard);
            state.clock += 1;
            let clock = state.clock;
            if let Some(pos) = state.lines.iter().position(|l| l.key == key) {
                state.lines[pos].last_used = clock;
                state.hits += 1;
                return state.lines[pos].compiled.clone();
            }
            state.misses += 1;
        }
        let compiled = compile();
        let mut state = lock_any(shard);
        state.compilations += 1;
        if let Some(pos) = state.lines.iter().position(|l| l.key == key) {
            // Lost a cold-cache race: serve the published line so repeat
            // callers keep getting pointer-identical schedules.
            return state.lines[pos].compiled.clone();
        }
        state.insert(key, Arc::clone(&compiled), self.shard_capacity);
        compiled
    }

    /// Resolves the tuned pick, compiles (or fetches) its schedule and
    /// executes it over `initial` block stores on `pool`. `None` when the
    /// query resolves to no table entry or the pick is not buildable at
    /// this rank count. Panics if a pool job panicked; the fallible
    /// surface is [`ServiceSelector::try_execute_on`].
    pub fn execute_on(
        &self,
        pool: &ExecutorPool,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Vec<BlockStore>> {
        self.try_execute_on(pool, system, collective, nodes, bytes, initial)
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
    }

    /// [`ServiceSelector::execute_on`] over the process-wide
    /// [`ExecutorPool::global`].
    pub fn execute(
        &self,
        system: &str,
        collective: Collective,
        nodes: usize,
        bytes: u64,
        initial: Vec<BlockStore>,
    ) -> Option<Vec<BlockStore>> {
        self.try_execute(system, collective, nodes, bytes, initial)
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
    }

    fn shard_of(&self, key: &Key) -> usize {
        // A cheap splitmix-style integer mix instead of the std SipHash:
        // the stripe choice runs on every request and only needs to spread
        // a handful of small integers, not resist collision attacks.
        let (sys, collective, nodes, slot) = *key;
        let mut h = (sys as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (collective as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ (nodes as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
            ^ (slot as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        (h % self.shards.len() as u64) as usize
    }

    /// Number of cache shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard LRU capacity.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Number of compiled schedules currently cached, across all shards.
    pub fn cached_schedules(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Current line count of every shard (for capacity-invariant tests).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| lock_any(s).lines.len())
            .collect()
    }

    /// Cache hits served so far, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).hits).sum()
    }

    /// Cache misses across all shards (followers waiting on an in-flight
    /// compile count as misses, not as compilations).
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).misses).sum()
    }

    /// Compilations started (single-flight leaderships taken) — with a
    /// warm-enough cache this equals the number of distinct
    /// `(system, collective, nodes, slot)` entries ever requested, however
    /// many threads raced for them; evicted entries recompile on
    /// re-request.
    pub fn compilations(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).compilations).sum()
    }

    /// Requests answered with the binomial fallback pick — open breaker,
    /// failed leadership, or timed-out follower wait — across all shards.
    /// Zero on a healthy service.
    pub fn fallbacks(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).fallbacks).sum()
    }

    /// Follower waits that hit [`DegradePolicy::flight_timeout`] before
    /// their leader settled, across all shards.
    pub fn timeouts(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).timeouts).sum()
    }

    /// Compile retries after a panicking attempt, across all shards (the
    /// first try of each leadership is not a retry).
    pub fn retries(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).retries).sum()
    }

    /// Dead-rank stalls ([`ExecError::RankDead`]) the crash-tolerant
    /// execution path has hit so far, across all shards. Zero on a service
    /// that never saw a crash.
    pub fn stalls(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).stalls).sum()
    }

    /// Successful shrink-and-retry recoveries, across all shards. Equals
    /// [`ServiceSelector::stalls`] when every stall was recoverable.
    pub fn recoveries(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).recoveries).sum()
    }

    /// A point-in-time dump of every active adaptive override, ordered by
    /// installation epoch. Empty on a service without adaptation, or one
    /// whose observations all match the committed model.
    pub fn overlay(&self) -> AdaptiveOverlay {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let state = lock_any(shard);
            for e in &state.adapt {
                if let Some(ov) = &e.override_state {
                    let (sys, collective, nodes, slot_idx) = e.key;
                    let index = &self.systems[sys as usize];
                    entries.push(OverlayEntry {
                        system: index.system().to_string(),
                        collective,
                        nodes,
                        committed: index.slot(slot_idx).pick.clone(),
                        pick: ov.pick.clone(),
                        epoch: ov.epoch,
                        samples: ov.samples,
                        observed_mean_us: ov.observed_mean_us,
                        modelled_us: ov.modelled_us,
                        challenger_us: ov.challenger_us,
                    });
                }
            }
        }
        entries.sort_by_key(|e| e.epoch);
        AdaptiveOverlay { entries }
    }

    /// Overrides installed by the adaptive loop so far (promotions, not
    /// currently-active overrides — see [`ServiceSelector::overlay`] for
    /// those), across all shards.
    pub fn overrides(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).overrides).sum()
    }

    /// Overrides reverted after the committed pick won a re-check, across
    /// all shards.
    pub fn reverts(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).reverts).sum()
    }

    /// Re-evaluations started (divergence triggers plus override
    /// re-checks), across all shards.
    pub fn reevals(&self) -> u64 {
        self.shards.iter().map(|s| lock_any(s).reevals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Entry, ScoreModel};
    use crate::Selector;

    fn table(system: &str) -> DecisionTable {
        let e = |collective, nodes: usize, bytes: u64, pick: &str| Entry {
            collective,
            dist: None,
            nodes,
            vector_bytes: bytes,
            pick: pick.into(),
            model: ScoreModel::Sync,
            time_us: 1.0,
        };
        DecisionTable {
            system: system.into(),
            entries: vec![
                e(Collective::Allreduce, 16, 32, "recursive-doubling"),
                e(Collective::Allreduce, 16, 1 << 20, "bine-large"),
                e(Collective::Allreduce, 64, 32, "recursive-doubling"),
                e(Collective::Allreduce, 64, 1 << 20, "bine-large+seg8"),
                e(Collective::Broadcast, 16, 32, "bine-tree"),
            ],
        }
    }

    #[test]
    fn choose_matches_the_serial_selector() {
        let t = table("Testbox");
        let serial = Selector::from_table(&t);
        let service = ServiceSelector::from_tables(&[t]);
        for nodes in [4usize, 16, 40, 64, 100] {
            for bytes in [1u64, 32, 4096, 1 << 20, 1 << 26] {
                assert_eq!(
                    service.choose("Testbox", Collective::Allreduce, nodes, bytes),
                    serial.choose(Collective::Allreduce, nodes, bytes),
                );
            }
        }
        assert!(service
            .choose("Testbox", Collective::Alltoall, 16, 32)
            .is_none());
        assert!(service
            .choose("nosuch", Collective::Allreduce, 16, 32)
            .is_none());
    }

    #[test]
    fn systems_resolve_by_name_or_slug() {
        let service = ServiceSelector::from_tables(&[table("MareNostrum 5"), table("LUMI")]);
        assert_eq!(service.system_index("MareNostrum 5"), Some(0));
        assert_eq!(service.system_index("marenostrum5"), Some(0));
        assert_eq!(service.system_index("lumi"), Some(1));
        assert_eq!(service.system_index("Frontier"), None);
        assert_eq!(service.system_names(), vec!["MareNostrum 5", "LUMI"]);
    }

    #[test]
    fn compiled_hits_the_cache_on_repeat() {
        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        let a = service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        let b = service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(service.compilations(), 1);
        assert_eq!(service.hits(), 1);
        assert_eq!(service.misses(), 1);
        assert_eq!(service.cached_schedules(), 1);
        // Distinct node counts compile separately even for one entry.
        let c = service
            .compiled("Testbox", Collective::Allreduce, 32, 32)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.num_ranks, 32);
        assert_eq!(service.compilations(), 2);
    }

    #[test]
    fn per_shard_capacity_is_respected_even_at_zero() {
        let service = ServiceSelector::from_tables(&[table("Testbox")])
            .with_shards(1)
            .with_shard_capacity(0); // clamped to 1
        assert_eq!(service.shard_capacity(), 1);
        service
            .compiled("Testbox", Collective::Allreduce, 16, 32)
            .unwrap();
        service
            .compiled("Testbox", Collective::Allreduce, 32, 32)
            .unwrap();
        assert_eq!(service.cached_schedules(), 1);
        assert!(service.shard_lens().iter().all(|&len| len <= 1));
    }

    #[test]
    fn fallback_pick_switches_at_the_harness_threshold() {
        use bine_sched::build;
        assert_eq!(
            fallback_pick(Collective::Allreduce, 32),
            "recursive-doubling"
        );
        assert_eq!(
            fallback_pick(Collective::Allreduce, FALLBACK_SMALL_VECTOR_THRESHOLD),
            "recursive-doubling"
        );
        assert_eq!(
            fallback_pick(Collective::Allreduce, FALLBACK_SMALL_VECTOR_THRESHOLD + 1),
            "rabenseifner"
        );
        assert_eq!(
            fallback_pick(Collective::Broadcast, 1 << 20),
            "scatter-allgather"
        );
        // "Always buildable": every collective's fallback builds at the
        // table's rank counts, on both sides of the switch point.
        for collective in Collective::ALL {
            for bytes in [32u64, 1 << 20] {
                for nodes in [16usize, 64] {
                    assert!(
                        build(collective, fallback_pick(collective, bytes), nodes, 0).is_some(),
                        "{} fallback must build at {nodes} ranks",
                        collective.name()
                    );
                }
            }
        }
    }

    #[test]
    fn resolve_system_lists_the_loaded_systems_on_a_miss() {
        let service = ServiceSelector::from_tables(&[table("MareNostrum 5"), table("LUMI")]);
        assert_eq!(service.resolve_system("lumi"), Ok(1));
        let err = service.resolve_system("Frontier").unwrap_err();
        assert!(err.contains("Frontier"), "{err}");
        assert!(err.contains("MareNostrum 5"), "{err}");
        assert!(err.contains("LUMI"), "{err}");
    }

    /// Injected compile panics walk the whole degradation ladder: each
    /// failed leadership retries `max_retries` times, consecutive failures
    /// trip the per-entry breaker, and every degraded request is answered
    /// with the binomial fallback — while other entries stay healthy.
    #[test]
    fn compile_failures_retry_then_trip_the_breaker_to_the_fallback() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let hook_calls = Arc::new(AtomicU64::new(0));
        let calls = Arc::clone(&hook_calls);
        let service = ServiceSelector::from_tables(&[table("Testbox")])
            .with_policy(DegradePolicy {
                flight_timeout: Duration::from_secs(30),
                max_retries: 1,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_secs(3600),
            })
            .with_compile_hook(Arc::new(move |a: &CompileAttempt| {
                if a.collective == Collective::Allreduce {
                    calls.fetch_add(1, Ordering::SeqCst);
                    panic!("injected compile failure");
                }
            }));

        // Leadership 1: first try + one retry both panic; not yet at the
        // breaker threshold, but the answer is already the fallback.
        let c = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("degraded answer");
        assert_eq!(c.algorithm, "rabenseifner");
        assert_eq!(c.num_ranks, 16);
        assert_eq!(hook_calls.load(Ordering::SeqCst), 2);
        assert_eq!(service.retries(), 1);
        assert_eq!(service.fallbacks(), 1);

        // Leadership 2 fails too → the breaker trips open.
        let c = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("degraded answer");
        assert_eq!(c.algorithm, "rabenseifner");
        assert_eq!(hook_calls.load(Ordering::SeqCst), 4);
        assert_eq!(service.retries(), 2);

        // Open breaker: served straight from the cached fallback line, no
        // compile attempt at all (the cooldown is an hour).
        let c = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("degraded answer");
        assert_eq!(c.algorithm, "rabenseifner");
        assert_eq!(
            hook_calls.load(Ordering::SeqCst),
            4,
            "breaker skips compiles"
        );
        assert_eq!(service.fallbacks(), 3);
        assert_eq!(service.timeouts(), 0);

        // A different entry on the same service stays fully healthy.
        let c = service
            .compiled("Testbox", Collective::Broadcast, 16, 32)
            .expect("healthy answer");
        assert_eq!(c.algorithm, "bine-tree");
    }

    /// After the cooldown, one request probes the entry half-open; a
    /// successful probe closes the breaker and the tuned pick is served
    /// (and cached) again.
    #[test]
    fn breaker_half_opens_and_recovers_after_the_cooldown() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let failing = Arc::new(AtomicBool::new(true));
        let fail = Arc::clone(&failing);
        let service = ServiceSelector::from_tables(&[table("Testbox")])
            .with_policy(DegradePolicy {
                flight_timeout: Duration::from_secs(30),
                max_retries: 0,
                backoff_base: Duration::ZERO,
                backoff_cap: Duration::ZERO,
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_millis(30),
            })
            .with_compile_hook(Arc::new(move |_: &CompileAttempt| {
                if fail.load(Ordering::SeqCst) {
                    panic!("injected compile failure");
                }
            }));

        // One failed leadership trips the breaker (threshold 1) …
        let c = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("degraded answer");
        assert_eq!(c.algorithm, "rabenseifner");
        // … and within the cooldown every request degrades.
        let c = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("degraded answer");
        assert_eq!(c.algorithm, "rabenseifner");
        assert_eq!(service.fallbacks(), 2);

        // Heal the compile path, wait out the cooldown: the next request
        // is the half-open probe, compiles for real and closes the breaker.
        failing.store(false, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(60));
        let probe = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("recovered answer");
        assert_eq!(probe.algorithm, "bine-large");
        // Fully recovered: the tuned pick is cached and served as a hit.
        let hit = service
            .compiled("Testbox", Collective::Allreduce, 16, 1 << 20)
            .expect("cached answer");
        assert!(Arc::ptr_eq(&probe, &hit));
        assert_eq!(service.fallbacks(), 2, "no further degradation");
    }

    #[test]
    fn a_dead_rank_triggers_shrink_and_retry_bit_identical_to_a_direct_run() {
        use bine_exec::Workload;
        use bine_sched::build;

        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        // (allreduce, 16, 32) resolves to recursive-doubling; kill rank 5.
        let served = service
            .try_execute_recovering("Testbox", Collective::Allreduce, 16, 32, 2, &[5])
            .expect("query resolves")
            .expect("the stall recovers");
        assert_eq!(service.stalls(), 1);
        assert_eq!(service.recoveries(), 1);
        let Served::Recovered(rec) = served else {
            panic!("a dead exchange partner must stall recursive doubling");
        };
        assert!(matches!(rec.error, ExecError::RankDead { src: 5, .. }));
        assert_eq!(rec.map.num_survivors(), 15);
        assert_eq!(rec.map.new_rank(5), None);
        assert_eq!(rec.map.new_rank(6), Some(5));
        assert_eq!(rec.schedule.num_ranks, 15);
        // Bit-identity against a direct run of the same pick at 15 ranks.
        let direct = build(Collective::Allreduce, &rec.pick, 15, 0).unwrap();
        let w = Workload::for_schedule(&direct, 2);
        let expected = bine_exec::sequential::run_reference(&direct, w.initial_state(&direct));
        assert_eq!(rec.finals, expected);
    }

    #[test]
    fn a_harmless_dead_rank_completes_over_the_full_communicator() {
        // Rank 3 is a leaf of the broadcast tree at (broadcast, 16, 32):
        // nobody receives from it, so the run completes without shrinking.
        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        let sched = bine_sched::build(Collective::Broadcast, "bine-tree", 16, 0).unwrap();
        let leaf = (0..16)
            .find(|r| sched.messages().all(|(_, m)| m.src != *r))
            .expect("a broadcast tree has leaves");
        let served = service
            .try_execute_recovering("Testbox", Collective::Broadcast, 16, 32, 2, &[leaf])
            .expect("query resolves")
            .expect("a dead leaf stalls nobody");
        assert!(!served.is_recovered());
        assert_eq!(served.finals().len(), 16);
        assert_eq!(service.stalls(), 0);
        assert_eq!(service.recoveries(), 0);
    }

    #[test]
    fn a_dead_broadcast_root_is_unrecoverable() {
        // Root 0's payload exists nowhere else: the stall must surface as
        // the original RankDead, and no recovery may be counted.
        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        let err = service
            .try_execute_recovering("Testbox", Collective::Broadcast, 16, 32, 2, &[0])
            .expect("query resolves")
            .expect_err("the source data died with the root");
        assert!(matches!(err, ExecError::RankDead { src: 0, .. }));
        assert_eq!(service.stalls(), 1);
        assert_eq!(service.recoveries(), 0);
    }

    #[test]
    fn repeated_recoveries_reuse_the_recovery_cache_slot() {
        let service = ServiceSelector::from_tables(&[table("Testbox")]);
        for _ in 0..3 {
            let served = service
                .try_execute_recovering("Testbox", Collective::Allreduce, 16, 32, 2, &[5])
                .unwrap()
                .unwrap();
            assert!(served.is_recovered());
        }
        assert_eq!(service.recoveries(), 3);
        // One compile of the 16-rank pick, one of the 15-rank recovery
        // schedule; the repeats are cache hits.
        assert_eq!(service.compilations(), 2);
    }

    #[test]
    fn execute_runs_the_tuned_pick_end_to_end() {
        use bine_exec::state::Workload;
        use bine_sched::build;

        let t = table("Testbox");
        let service = ServiceSelector::from_tables(&[t]);
        // The pick at (allreduce, 16, 32) is recursive-doubling; run it and
        // cross-check against the serial reference executor.
        let sched = build(Collective::Allreduce, "recursive-doubling", 16, 0).unwrap();
        let w = Workload::for_schedule(&sched, 2);
        let expected = bine_exec::sequential::run_reference(&sched, w.initial_state(&sched));
        let finals = service
            .execute(
                "Testbox",
                Collective::Allreduce,
                16,
                32,
                w.initial_state(&sched),
            )
            .unwrap();
        assert_eq!(finals, expected);
    }
}
