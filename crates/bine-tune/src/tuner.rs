//! The offline tuner: sweeps the full algorithm catalog over a system's
//! `(collective, nodes, vector size, segment count)` grid and records the
//! winner of every grid point into a [`DecisionTable`].
//!
//! ## Two-stage scoring
//!
//! 1. **Synchronous stage** — every catalog algorithm is scored flat
//!    (unsegmented) with the synchronous barrier model
//!    ([`bine_net::cost::CostModel`]). This stage is cheap and runs at every
//!    grid point, including the largest node counts.
//! 2. **Discrete-event refinement** — at grid points within the configured
//!    node budget ([`TunerConfig::des_max_nodes`]), the top
//!    [`TunerConfig::des_top_k`] algorithms of stage 1 (plus, always, the
//!    stage-1 winner and both binomial-baseline flavours) are re-scored with
//!    the discrete-event simulator across the configured pipeline segment
//!    counts. The DES is what sees pipelining, so this is the stage that
//!    moves the paper's ring → bine-large crossover (Sec. 5.2.2); its
//!    winner, segment count included, becomes the table entry.
//!
//! ## Pruning
//!
//! Both stages sort their candidates by the cheap closed-form lower bound
//! of [`bine_net::cost::LowerBounds`] (computed from the catalog metadata
//! `AlgorithmId::{min_steps, min_rank_bytes}` — no schedule is built) and
//! skip every candidate whose bound already exceeds the incumbent best
//! score. Because the bounds are *true* lower bounds (validated in
//! `bine-sched`), pruning never changes any argmin — property-tested in
//! `bine-bench/tests/tuned_selection.rs` by re-tuning random grid points
//! with pruning disabled — it only avoids building and scoring schedules
//! that provably lose. This is what keeps full decision-table regeneration (the CI drift
//! gate does one on every push) inside a CI-friendly budget: the linear
//! algorithms' `p − 1` step bound prunes them at every latency-dominated
//! grid point before their O(p²)-message schedules are ever constructed.

use std::collections::HashMap;
use std::sync::Arc;

use bine_net::allocation::Allocation;
use bine_net::cost::{CostModel, CostSummary, LowerBounds};
use bine_net::sim;
use bine_net::topology::Topology;
use bine_net::view::synth_view;
use bine_sched::{
    algorithms, binomial_default, build, build_irregular, irregular_algorithms, is_synth_name,
    split_segments, synth_algorithms, AlgorithmId, Collective, CompiledSchedule, IrregularAlg,
    Schedule, SizeDist, SynthSpec, TopologyView, IRREGULAR_COLLECTIVES,
};

use crate::table::{DecisionTable, Entry, ScoreModel};

/// One node count of a tuning grid: the topology hosting the job and the
/// rank→node placement, exactly as the benchmark harness would evaluate it.
pub struct TunePoint {
    /// Number of job nodes (= schedule ranks; one rank per node).
    pub nodes: usize,
    /// The topology hosting the job.
    pub topology: Box<dyn Topology>,
    /// The job's rank→node placement. Ranks must occupy distinct nodes
    /// (the lower bounds assume every network message crosses a link).
    pub allocation: Allocation,
}

/// A tuning target: one system's grid.
pub struct Target {
    /// Display name, recorded in the decision table.
    pub system: String,
    /// Cost-model parameters shared by both scoring stages.
    pub model: CostModel,
    /// The collectives to tune.
    pub collectives: Vec<Collective>,
    /// One point per node count, ascending.
    pub points: Vec<TunePoint>,
    /// Vector sizes in bytes, ascending.
    pub vector_sizes: Vec<u64>,
}

impl Target {
    /// The tuning point hosting `nodes` nodes.
    ///
    /// # Panics
    /// Panics if the grid has no point for this node count.
    pub fn point(&self, nodes: usize) -> &TunePoint {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .unwrap_or_else(|| panic!("{}: no tuning point for {nodes} nodes", self.system))
    }
}

/// Tuner knobs. The defaults are what generates the committed `tuning/`
/// tables; the drift gate regenerates with the same defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerConfig {
    /// Pipeline segment counts tried (in addition to the implicit 1) during
    /// the DES refinement.
    pub segment_counts: Vec<usize>,
    /// How many stage-1 algorithms advance to the DES refinement.
    pub des_top_k: usize,
    /// Largest node count at which the DES refinement runs; beyond it the
    /// stage-1 (synchronous) winner is recorded directly. The cap sits at
    /// 512 nodes — the regime the paper's Sec. 5.2 claims actually live in —
    /// which the incremental fair-share + arena fast path of `bine_net::sim`
    /// makes affordable (the cap was 64 when every rate event recomputed the
    /// global fair share from scratch); the remaining grid (1024/2048-node
    /// points) stays synchronous-only to keep full-table regeneration inside
    /// the CI drift gate's wall-time budget.
    pub des_max_nodes: usize,
    /// Alltoall-specific DES ceiling, tighter than [`Self::des_max_nodes`].
    /// An alltoall simulation carries Θ(p²) data blocks — and with the
    /// linear `pairwise` candidate, Θ(p) steps of Θ(p) concurrent flows —
    /// so the general 512-node cap that is affordable for the Θ(p·log p)
    /// collectives would blow the drift gate's wall-time budget here. Above
    /// this cap alltoall records its stage-1 (synchronous) winner directly.
    pub des_alltoall_max_nodes: usize,
    /// Largest node count at which the Θ(p)-step algorithms (ring,
    /// pairwise) are candidates at all, mirroring the benchmark harness's
    /// exclusion: they are both impractically large to build and — as the
    /// paper notes — not competitive there.
    pub max_linear_nodes: usize,
    /// Smallest vector size at which pipelined (`seg > 1`) DES candidates
    /// are tried. Below it segmentation only adds per-chunk alpha —
    /// latency-dominated points never pick it — so the sweep does not pay
    /// for simulating it.
    pub min_segment_bytes: u64,
    /// Whether the lower-bound pruning is enabled. Disabled only by tests
    /// that verify pruning does not change any argmin.
    pub prune: bool,
}

impl Default for TunerConfig {
    fn default() -> Self {
        Self {
            segment_counts: vec![2, 4, 8, 16],
            des_top_k: 4,
            des_max_nodes: 512,
            des_alltoall_max_nodes: 128,
            max_linear_nodes: 1024,
            min_segment_bytes: 1 << 20,
            prune: true,
        }
    }
}

/// A stage-1 candidate: an algorithm with its cheap lower bound and its
/// enumeration position (the tie-breaker, so pruned sweeps pick the same
/// winner as an unpruned enumeration-order scan).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The algorithm.
    pub alg: AlgorithmId,
    /// Position in the enumeration: catalog order, with synthesized
    /// candidates after the whole catalog (tie-break key).
    pub idx: usize,
    /// Cheap lower bound on this candidate's score (microseconds).
    pub lower_bound: f64,
}

/// Builds the lower-bound-sorted candidate list for one grid point: every
/// catalog algorithm of `collective` (linear ones only up to
/// `max_linear_nodes`), sorted by [`LowerBounds::sync_time_us`] ascending
/// with catalog order as the tie-break.
pub fn candidates(
    collective: Collective,
    nodes: usize,
    vector_bytes: u64,
    lbs: &LowerBounds,
    max_linear_nodes: usize,
) -> Vec<Candidate> {
    candidates_with(collective, nodes, vector_bytes, lbs, max_linear_nodes, &[])
}

/// [`candidates`] plus provider-supplied (synthesized) algorithms, which
/// enumerate after the whole catalog. The closed-form lower bounds are
/// universal per-collective semantics bounds, so they apply to synthesized
/// schedules unchanged.
pub fn candidates_with(
    collective: Collective,
    nodes: usize,
    vector_bytes: u64,
    lbs: &LowerBounds,
    max_linear_nodes: usize,
    extra: &[AlgorithmId],
) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = algorithms(collective)
        .into_iter()
        .chain(extra.iter().cloned())
        .enumerate()
        .filter(|(_, a)| !a.is_linear || nodes <= max_linear_nodes)
        .map(|(idx, alg)| {
            let lower_bound = lbs.sync_time_us(
                alg.min_steps(nodes),
                alg.min_rank_bytes(vector_bytes, nodes),
            );
            Candidate {
                alg,
                idx,
                lower_bound,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        a.lower_bound
            .total_cmp(&b.lower_bound)
            .then(a.idx.cmp(&b.idx))
    });
    out
}

/// Outcome of a pruned single-point sweep.
#[derive(Debug, Clone)]
pub struct CellBest {
    /// The overall winner and its score.
    pub best: (AlgorithmId, f64),
    /// The best non-Bine algorithm and its score (what the benchmark
    /// heatmaps report Bine's advantage against). `None` when every
    /// non-Bine candidate was pruned — which can only happen when the
    /// winner is also non-Bine-advantaged, see [`pruned_best`].
    pub best_non_bine: Option<(AlgorithmId, f64)>,
}

/// Scores `candidates` (already lower-bound-sorted, see [`candidates`])
/// with `score`, skipping every candidate whose lower bound proves it can
/// neither be the overall winner nor the best non-Bine algorithm. With
/// `prune` disabled every candidate is scored.
///
/// The returned winner (and, when the winner is Bine, the best non-Bine
/// runner-up) is *exactly* the one an exhaustive catalog-order scan picks:
/// a candidate is only skipped when its bound strictly exceeds the
/// incumbent, so tying candidates are always scored, and ties resolve by
/// catalog position.
pub fn pruned_best(
    cands: &[Candidate],
    prune: bool,
    mut score: impl FnMut(&AlgorithmId) -> f64,
) -> CellBest {
    // Track winners by index into `cands` (ids are owned, not `Copy`).
    let mut best: Option<(usize, f64)> = None;
    let mut best_other: Option<(usize, f64)> = None;
    for (i, c) in cands.iter().enumerate() {
        let may_win = best.is_none_or(|(_, t)| c.lower_bound <= t);
        let may_lead_others = !c.alg.is_bine && best_other.is_none_or(|(_, t)| c.lower_bound <= t);
        if prune && !may_win && !may_lead_others {
            continue;
        }
        let t = score(&c.alg);
        if best.is_none_or(|(bi, bt)| (t, c.idx) < (bt, cands[bi].idx)) {
            best = Some((i, t));
        }
        if !c.alg.is_bine && best_other.is_none_or(|(bi, bt)| (t, c.idx) < (bt, cands[bi].idx)) {
            best_other = Some((i, t));
        }
    }
    let (bi, t) = best.expect("at least one candidate per grid point");
    CellBest {
        best: (cands[bi].alg.clone(), t),
        best_non_bine: best_other.map(|(i, t)| (cands[i].alg.clone(), t)),
    }
}

/// The offline tuner. Caches built and compiled schedules across the grid
/// points of one collective (they are shared by all vector sizes), and owns
/// a [`bine_net::sim::SimArena`] so the DES refinement stage reuses routes,
/// dependency analysis and event-loop scratch across the whole sweep instead
/// of re-allocating them per simulation.
pub struct Tuner {
    target: Target,
    config: TunerConfig,
    schedules: HashMap<(Collective, String, usize), Schedule>,
    /// Per-schedule [`CostSummary`], so the synchronous stage re-scores a
    /// cached schedule at each vector size in O(messages) instead of
    /// walking its block lists again — bit-identical to scoring the
    /// schedule directly, and the difference between minutes and seconds
    /// for the Θ(p²·log p)-block alltoall schedules at 1024+ nodes.
    summaries: HashMap<(Collective, String, usize), CostSummary>,
    compiled: HashMap<(Collective, String, usize, usize), CompiledSchedule>,
    arena: sim::SimArena,
    /// Per-node-count topology view the synthesizers consume, derived once
    /// from the grid point's `(topology, allocation)` pair — the same
    /// derivation the serving layer uses, so tuned synth picks rebuild
    /// identically at serve time.
    views: HashMap<usize, Option<Arc<TopologyView>>>,
    /// Per-(collective, nodes) synthesized candidate ids. The ForestColl
    /// tree-count search is not free, so it runs once per grid column, not
    /// once per vector size.
    synth_ids: HashMap<(Collective, usize), Vec<AlgorithmId>>,
}

impl Tuner {
    /// Creates a tuner for one target with the given configuration.
    pub fn new(target: Target, config: TunerConfig) -> Self {
        Self {
            target,
            config,
            schedules: HashMap::new(),
            summaries: HashMap::new(),
            compiled: HashMap::new(),
            arena: sim::SimArena::new(),
            views: HashMap::new(),
            synth_ids: HashMap::new(),
        }
    }

    /// The target being tuned.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The configuration in use.
    pub fn config(&self) -> &TunerConfig {
        &self.config
    }

    fn point(&self, nodes: usize) -> &TunePoint {
        self.target.point(nodes)
    }

    /// The lower-bound ingredients at one node count.
    pub fn lower_bounds(&self, nodes: usize) -> LowerBounds {
        LowerBounds::new(&self.target.model, self.point(nodes).topology.as_ref())
    }

    /// The largest per-message block-list length in an algorithm's flat
    /// schedule: the number of pipeline chunks beyond which further
    /// segmentation is a no-op.
    fn max_message_blocks(&mut self, collective: Collective, name: &str, nodes: usize) -> usize {
        self.ensure_schedule(collective, name, nodes);
        self.schedules[&(collective, name.to_string(), nodes)]
            .steps
            .iter()
            .flat_map(|s| s.messages.iter())
            .map(|m| m.blocks.len())
            .max()
            .unwrap_or(1)
    }

    /// The (cached) topology view for one grid column, consumed by the
    /// synthesizers. Only derived for node counts inside the DES horizon:
    /// synthesized schedules are only trusted where the DES can judge them
    /// (and the O(p²) pairwise-route derivation stays affordable).
    pub fn view_for(&mut self, nodes: usize) -> Option<Arc<TopologyView>> {
        if nodes > self.config.des_max_nodes {
            return None;
        }
        if let Some(v) = self.views.get(&nodes) {
            return v.clone();
        }
        let point = self.target.point(nodes);
        let view = synth_view(point.topology.as_ref(), &point.allocation)
            .ok()
            .map(Arc::new);
        self.views.insert(nodes, view.clone());
        view
    }

    /// The synthesized candidates for one grid column (cached; the
    /// ForestColl tree-count search binary-searches bottleneck capacities,
    /// which is worth doing once per column, not once per vector size).
    fn synth_candidates(&mut self, collective: Collective, nodes: usize) -> Vec<AlgorithmId> {
        if !matches!(
            collective,
            Collective::Broadcast | Collective::Reduce | Collective::Allreduce
        ) {
            return Vec::new();
        }
        if let Some(ids) = self.synth_ids.get(&(collective, nodes)) {
            return ids.clone();
        }
        let ids = match self.view_for(nodes) {
            Some(view) => synth_algorithms(collective, &view),
            None => Vec::new(),
        };
        self.synth_ids.insert((collective, nodes), ids.clone());
        ids
    }

    /// The full candidate list for one grid point: the catalog plus the
    /// synthesized candidates for this column, lower-bound-sorted.
    fn point_candidates(
        &mut self,
        collective: Collective,
        nodes: usize,
        vector_bytes: u64,
        lbs: &LowerBounds,
    ) -> Vec<Candidate> {
        let extra = self.synth_candidates(collective, nodes);
        candidates_with(
            collective,
            nodes,
            vector_bytes,
            lbs,
            self.config.max_linear_nodes,
            &extra,
        )
    }

    fn ensure_schedule(&mut self, collective: Collective, name: &str, nodes: usize) {
        let key = (collective, name.to_string(), nodes);
        if self.schedules.contains_key(&key) {
            return;
        }
        let sched = if is_synth_name(split_segments(name).0) {
            let (base, chunks) = split_segments(name);
            let spec = SynthSpec::parse(base)
                .unwrap_or_else(|| panic!("malformed synthesized name {name}"));
            let view = self
                .view_for(nodes)
                .unwrap_or_else(|| panic!("no topology view for {name} at {nodes} nodes"));
            let sched = spec.synthesize(collective, &view, 0).unwrap_or_else(|| {
                panic!("{name} cannot be synthesized for {collective:?} at {nodes} nodes")
            });
            if chunks > 1 {
                sched.segmented(chunks)
            } else {
                sched
            }
        } else {
            build(collective, name, nodes, 0)
                .unwrap_or_else(|| panic!("unknown algorithm {name} for {collective:?}"))
        };
        self.schedules.insert(key, sched);
    }

    /// Scores one candidate (full tuned name, `+segS` suffix honoured)
    /// under the requested time model at one grid point.
    pub fn score(
        &mut self,
        collective: Collective,
        name: &str,
        nodes: usize,
        vector_bytes: u64,
        model: ScoreModel,
    ) -> f64 {
        match model {
            ScoreModel::Sync => {
                self.ensure_schedule(collective, name, nodes);
                let key = (collective, name.to_string(), nodes);
                let summary = self
                    .summaries
                    .entry(key.clone())
                    .or_insert_with(|| CostSummary::of(&self.schedules[&key]));
                let point = self.target.point(nodes);
                self.target
                    .model
                    .estimate_summary(
                        summary,
                        vector_bytes,
                        point.topology.as_ref(),
                        &point.allocation,
                    )
                    .total_us
            }
            ScoreModel::Des => {
                let (base, chunks) = split_segments(name);
                let key = (collective, base.to_string(), nodes, chunks);
                if !self.compiled.contains_key(&key) {
                    self.ensure_schedule(collective, base, nodes);
                    let compiled = self.schedules[&(collective, base.to_string(), nodes)]
                        .segmented(chunks)
                        .compile();
                    self.compiled.insert(key.clone(), compiled);
                }
                let compiled = &self.compiled[&key];
                // `Target::point` borrows only `self.target`, so the arena
                // can be borrowed mutably alongside the cached schedule.
                let point = self.target.point(nodes);
                sim::SimRequest::new(
                    &self.target.model,
                    compiled,
                    vector_bytes,
                    point.topology.as_ref(),
                    &point.allocation,
                )
                .arena(&mut self.arena)
                .time_only()
                .run()
                .makespan_us()
            }
        }
    }

    /// Stage-1 pruned sweep of one grid point: the synchronous-model winner
    /// and best non-Bine runner-up over the full catalog.
    pub fn sync_cell(
        &mut self,
        collective: Collective,
        nodes: usize,
        vector_bytes: u64,
    ) -> CellBest {
        let lbs = self.lower_bounds(nodes);
        let cands = self.point_candidates(collective, nodes, vector_bytes, &lbs);
        let prune = self.config.prune;
        pruned_best(&cands, prune, |alg| {
            self.score(
                collective,
                alg.name(),
                nodes,
                vector_bytes,
                ScoreModel::Sync,
            )
        })
    }

    /// The largest node count whose grid points get DES refinement for
    /// `collective` — [`TunerConfig::des_max_nodes`], tightened to
    /// [`TunerConfig::des_alltoall_max_nodes`] for the quadratic alltoall.
    pub fn des_node_cap(&self, collective: Collective) -> usize {
        match collective {
            Collective::Alltoall => self
                .config
                .des_max_nodes
                .min(self.config.des_alltoall_max_nodes),
            _ => self.config.des_max_nodes,
        }
    }

    /// Tunes one grid point into its decision-table entry.
    pub fn tune_point(&mut self, collective: Collective, nodes: usize, vector_bytes: u64) -> Entry {
        let lbs = self.lower_bounds(nodes);
        let cands = self.point_candidates(collective, nodes, vector_bytes, &lbs);
        let prune = self.config.prune;

        // Stage 1: synchronous sweep over the whole catalog (records every
        // scored candidate for the top-K selection below). At DES-eligible
        // points the prune threshold is the K-th best score seen, not the
        // best: a candidate that cannot win stage 1 may still belong to the
        // stage-2 top-K, and pruning must never change what stage 2 sees —
        // that is what keeps pruned and exhaustive runs byte-identical.
        let des_eligible = nodes <= self.des_node_cap(collective);
        let mut scored: Vec<(usize, f64)> = Vec::new(); // (cands index, score)
        let mut top_scores: Vec<f64> = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in cands.iter().enumerate() {
            let threshold = if des_eligible {
                if top_scores.len() < self.config.des_top_k {
                    f64::INFINITY
                } else {
                    top_scores[self.config.des_top_k - 1]
                }
            } else {
                best.map_or(f64::INFINITY, |(_, t)| t)
            };
            if prune && c.lower_bound > threshold {
                // Candidates are lower-bound-sorted and the threshold only
                // improves, so nothing after this point can matter either.
                break;
            }
            let t = self.score(
                collective,
                c.alg.name(),
                nodes,
                vector_bytes,
                ScoreModel::Sync,
            );
            scored.push((i, t));
            let pos = top_scores.partition_point(|&s| s <= t);
            top_scores.insert(pos, t);
            top_scores.truncate(self.config.des_top_k);
            if best.is_none_or(|(bi, bt)| (t, c.idx) < (bt, cands[bi].idx)) {
                best = Some((i, t));
            }
        }
        let (best_i, sync_time) = best.expect("at least one candidate per grid point");
        let sync_winner = &cands[best_i].alg;

        if !des_eligible {
            return Entry {
                collective,
                dist: None,
                nodes,
                vector_bytes,
                pick: sync_winner.name().to_string(),
                model: ScoreModel::Sync,
                time_us: sync_time,
            };
        }

        // Stage 2: DES refinement. Candidate algorithms: the stage-1
        // winner, both binomial-baseline flavours (so the selector's pick
        // is never worse than the baseline by construction), the stage-1
        // top K, and — like the baselines — every synthesized candidate:
        // synthesis exists precisely for effects the synchronous model
        // cannot see, so the DES always gets to judge it. The forced set
        // does not depend on which candidates stage-1 pruning scored, so
        // pruned and exhaustive runs still refine the same list.
        let mut names: Vec<String> = vec![sync_winner.name().to_string()];
        let push_unique = |names: &mut Vec<String>, name: &str| {
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        };
        for flavour in [
            binomial_default(collective, true),
            binomial_default(collective, false),
        ] {
            push_unique(&mut names, flavour);
        }
        scored.sort_by(|a, b| {
            a.1.total_cmp(&b.1)
                .then(cands[a.0].idx.cmp(&cands[b.0].idx))
        });
        for &(i, _) in scored.iter().take(self.config.des_top_k) {
            push_unique(&mut names, cands[i].alg.name());
        }
        for c in &cands {
            if c.alg.is_synthesized() {
                push_unique(&mut names, c.alg.name());
            }
        }

        let by_name: HashMap<&str, &AlgorithmId> =
            cands.iter().map(|c| (c.alg.name(), &c.alg)).collect();
        let mut des_cands: Vec<(f64, usize, usize)> = Vec::new(); // (lb, name idx, seg)
        for (order, name) in names.iter().enumerate() {
            let alg = by_name[name.as_str()];
            let lb = lbs.des_time_us(alg.min_rank_bytes(vector_bytes, nodes));
            des_cands.push((lb, order, 1));
            if vector_bytes < self.config.min_segment_bytes {
                continue;
            }
            // Segment counts beyond the largest per-message block list
            // collapse onto the same schedule (single-block messages are
            // unsplittable), so only distinct effective counts are
            // simulated.
            let cap = self.max_message_blocks(collective, name, nodes);
            let mut effective: Vec<usize> = self
                .config
                .segment_counts
                .iter()
                .map(|&s| s.min(cap))
                .filter(|&s| s > 1)
                .collect();
            effective.sort_unstable();
            effective.dedup();
            for seg in effective {
                des_cands.push((lb, order, seg));
            }
        }
        des_cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut best_des: Option<(usize, usize, f64)> = None; // (name idx, seg, score)
        for &(lb, order, seg) in &des_cands {
            if prune && best_des.is_some_and(|(_, _, t)| lb > t) {
                break;
            }
            let full = tuned_name(&names[order], seg);
            let t = self.score(collective, &full, nodes, vector_bytes, ScoreModel::Des);
            if best_des.is_none_or(|(bo, _, bt)| (t, order) < (bt, bo)) {
                best_des = Some((order, seg, t));
            }
        }
        let (order, seg, t) = best_des.expect("DES stage always has candidates");
        Entry {
            collective,
            dist: None,
            nodes,
            vector_bytes,
            pick: tuned_name(&names[order], seg),
            model: ScoreModel::Des,
            time_us: t,
        }
    }

    /// Tunes one irregular (v-variant) grid point: every applicable
    /// [`IrregularAlg`] is built with `dist`'s synthetic counts (root 0,
    /// heavy rank 0 — the placement the harness evaluates) and scored flat
    /// with the synchronous model; the argmin becomes the entry.
    ///
    /// Deliberately **unpruned** and synchronous-only: the catalog's cheap
    /// lower bounds assume equal per-rank counts, which skewed
    /// distributions violate (a one-heavy gatherv moves `n` bytes over one
    /// edge per tree level, nothing like `n/p` per rank), so a bound-driven
    /// skip could silently change an argmin. The candidate sets are tiny
    /// (2–3 algorithms), which keeps the exhaustive sweep cheap.
    pub fn tune_irregular_point(
        &mut self,
        collective: Collective,
        dist: SizeDist,
        nodes: usize,
        vector_bytes: u64,
    ) -> Entry {
        let built = self.irregular_candidates(collective, dist, nodes);
        self.score_irregular(collective, dist, nodes, vector_bytes, &built)
    }

    /// Scores pre-built irregular candidates at one vector size and returns
    /// the argmin entry (ties resolve by candidate order, exactly as the
    /// regular sweep resolves them by catalog order).
    fn score_irregular(
        &self,
        collective: Collective,
        dist: SizeDist,
        nodes: usize,
        vector_bytes: u64,
        built: &[(IrregularAlg, CostSummary)],
    ) -> Entry {
        let point = self.target.point(nodes);
        let mut best: Option<(&'static str, f64)> = None;
        for (alg, summary) in built {
            let t = self
                .target
                .model
                .estimate_summary(
                    summary,
                    vector_bytes,
                    point.topology.as_ref(),
                    &point.allocation,
                )
                .total_us;
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((alg.name(), t));
            }
        }
        let (pick, time_us) = best.expect("every v-variant collective has candidates");
        Entry {
            collective,
            dist: Some(dist),
            nodes,
            vector_bytes,
            pick: pick.to_string(),
            model: ScoreModel::Sync,
            time_us,
        }
    }

    /// Builds the irregular candidate schedules of one
    /// `(collective, dist, nodes)` cell and summarises each for repeated
    /// per-size scoring (the schedule itself is dropped immediately — the
    /// synchronous model reads nothing a [`CostSummary`] does not carry).
    /// The linear-step ring is excluded above
    /// [`TunerConfig::max_linear_nodes`], mirroring the regular sweep.
    fn irregular_candidates(
        &mut self,
        collective: Collective,
        dist: SizeDist,
        nodes: usize,
    ) -> Vec<(IrregularAlg, CostSummary)> {
        let counts = dist.counts(nodes, 0);
        irregular_algorithms(collective)
            .into_iter()
            .filter(|&alg| alg != IrregularAlg::Ring || nodes <= self.config.max_linear_nodes)
            .map(|alg| {
                let sched = build_irregular(collective, alg.name(), nodes, 0, &counts)
                    .expect("catalog algorithm builds for its own collective");
                (alg, CostSummary::of(&sched))
            })
            .collect()
    }

    /// Sweeps the irregular grids of every tunable v-variant collective in
    /// the target: `(collective, dist, nodes, bytes)` with `dist` ranging
    /// over [`SizeDist::ALL`]. Candidate schedules live only for the sizes
    /// loop of one `(collective, dist, nodes)` cell, bounding peak memory.
    pub fn tune_irregular(&mut self) -> Vec<Entry> {
        let collectives: Vec<Collective> = self
            .target
            .collectives
            .iter()
            .copied()
            .filter(|c| IRREGULAR_COLLECTIVES.contains(c))
            .collect();
        let node_counts: Vec<usize> = self.target.points.iter().map(|p| p.nodes).collect();
        let sizes = self.target.vector_sizes.clone();
        let mut entries = Vec::new();
        for &collective in &collectives {
            for &nodes in &node_counts {
                for dist in SizeDist::ALL {
                    let built = self.irregular_candidates(collective, dist, nodes);
                    for &n in &sizes {
                        entries.push(self.score_irregular(collective, dist, nodes, n, &built));
                    }
                }
            }
        }
        entries
    }

    /// Tunes the full grid into a decision table: the regular
    /// `(collective, nodes, bytes)` grid of every target collective plus
    /// the irregular `(collective, dist, nodes, bytes)` grids of the
    /// v-variant collectives among them. Schedule caches are dropped
    /// between collectives to bound peak memory on the largest systems,
    /// exactly as the benchmark runner does.
    pub fn tune(&mut self) -> DecisionTable {
        let collectives = self.target.collectives.clone();
        let node_counts: Vec<usize> = self.target.points.iter().map(|p| p.nodes).collect();
        let sizes = self.target.vector_sizes.clone();
        let mut entries = Vec::new();
        for &collective in &collectives {
            for &nodes in &node_counts {
                for &n in &sizes {
                    entries.push(self.tune_point(collective, nodes, n));
                }
            }
            self.schedules.clear();
            self.summaries.clear();
            self.compiled.clear();
            self.arena.clear();
        }
        entries.extend(self.tune_irregular());
        let mut table = DecisionTable {
            system: self.target.system.clone(),
            entries,
        };
        table.sort();
        table
    }
}

/// The catalog name of a pick: `name` for one segment, `name+segS`
/// otherwise.
pub fn tuned_name(base: &str, segments: usize) -> String {
    if segments > 1 {
        format!("{base}+seg{segments}")
    } else {
        base.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bine_net::topology::IdealFullMesh;

    fn target(node_counts: &[usize]) -> Target {
        Target {
            system: "Irrbox".into(),
            model: CostModel::default(),
            collectives: vec![
                Collective::Gather,
                Collective::Allgather,
                Collective::Broadcast,
            ],
            points: node_counts
                .iter()
                .map(|&n| TunePoint {
                    nodes: n,
                    topology: Box::new(IdealFullMesh::new(n)),
                    allocation: Allocation::block(n),
                })
                .collect(),
            vector_sizes: vec![32, 1 << 20],
        }
    }

    #[test]
    fn irregular_sweep_covers_the_v_variant_grid_and_skips_the_rest() {
        let mut tuner = Tuner::new(target(&[8, 16]), TunerConfig::default());
        let entries = tuner.tune_irregular();
        // Gather and allgather have v-variants, broadcast does not:
        // 2 collectives x 2 node counts x 3 dists x 2 sizes.
        assert_eq!(entries.len(), 24);
        for e in &entries {
            assert!(e.dist.is_some());
            assert_eq!(e.model, ScoreModel::Sync);
            let alg = IrregularAlg::from_name(&e.pick)
                .unwrap_or_else(|| panic!("{} is not an irregular algorithm", e.pick));
            assert!(
                irregular_algorithms(e.collective).contains(&alg),
                "{} picked for {:?}",
                e.pick,
                e.collective
            );
        }
    }

    #[test]
    fn full_tune_appends_irregular_grids_and_round_trips() {
        let mut tuner = Tuner::new(target(&[8]), TunerConfig::default());
        let table = tuner.tune();
        // Regular grid: 3 collectives x 1 node count x 2 sizes. Irregular:
        // 2 v-variant collectives x 3 dists x 2 sizes.
        assert_eq!(table.entries.len(), 6 + 12);
        let parsed = DecisionTable::from_json(&table.to_json()).unwrap();
        assert_eq!(parsed.system, table.system);
        assert_eq!(parsed.entries.len(), table.entries.len());
        // A re-tuned single irregular point reproduces its table entry
        // exactly (the sweep is deterministic).
        let committed = table
            .at(Collective::Gather, Some(SizeDist::OneHeavy), 8, 32)
            .unwrap();
        let fresh = tuner.tune_irregular_point(Collective::Gather, SizeDist::OneHeavy, 8, 32);
        assert_eq!(&fresh, committed);
    }
}
