//! End-to-end correctness: every algorithm of every collective, executed over
//! real data on both executors, must satisfy the MPI post-condition of its
//! collective. This is the repository's substitute for the paper's
//! correctness claim that any rank-to-node mapping yields a valid algorithm.

use std::sync::Arc;

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, threaded, verify, ExecutorPool};
use bine_sched::{
    algorithms, build, build_irregular, irregular_algorithms, Collective, SizeDist,
    IRREGULAR_COLLECTIVES,
};

#[test]
fn every_algorithm_is_correct_on_the_sequential_executor() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            for p in [2usize, 4, 8, 32, 64] {
                for root in [0, p - 1, p / 3] {
                    let sched = build(collective, alg.name(), p, root)
                        .unwrap_or_else(|| panic!("{}", alg.name()));
                    let workload = Workload::for_schedule(&sched, 3);
                    let finals = sequential::run(&sched, workload.initial_state(&sched));
                    if let Err(e) = verify::verify(&workload, &finals) {
                        panic!("{:?}/{} p={p} root={root}: {e}", collective, alg.name());
                    }
                    if !collective.is_rooted() {
                        break; // the root is irrelevant, no need to repeat
                    }
                }
            }
        }
    }
}

#[test]
fn every_algorithm_is_correct_on_the_threaded_executor() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            let p = 16;
            let sched =
                build(collective, alg.name(), p, 5).unwrap_or_else(|| panic!("{}", alg.name()));
            let workload = Workload::for_schedule(&sched, 2);
            let finals = threaded::run(&sched, workload.initial_state(&sched));
            if let Err(e) = verify::verify(&workload, &finals) {
                panic!("{:?}/{} (threaded): {e}", collective, alg.name());
            }
        }
    }
}

#[test]
fn all_four_executors_agree_exactly_with_the_reference() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            let p = 32;
            let sched =
                build(collective, alg.name(), p, 7).unwrap_or_else(|| panic!("{}", alg.name()));
            let workload = Workload::for_schedule(&sched, 2);
            let reference = sequential::run_reference(&sched, workload.initial_state(&sched));
            let seq = sequential::run(&sched, workload.initial_state(&sched));
            assert_eq!(
                seq,
                reference,
                "zero-copy sequential: {:?}/{}",
                collective,
                alg.name()
            );
            let comp = compiled::run(&sched.compile(), workload.initial_state(&sched));
            assert_eq!(comp, reference, "compiled: {:?}/{}", collective, alg.name());
            let thr = threaded::run(&sched, workload.initial_state(&sched));
            assert_eq!(thr, reference, "pool: {:?}/{}", collective, alg.name());
        }
    }
}

#[test]
fn legacy_thread_per_rank_executor_agrees_with_the_pool() {
    for collective in Collective::ALL {
        let alg = algorithms(collective)[0].clone();
        let sched =
            build(collective, alg.name(), 16, 3).unwrap_or_else(|| panic!("{}", alg.name()));
        let workload = Workload::for_schedule(&sched, 2);
        let legacy = threaded::run_thread_per_rank(&sched, workload.initial_state(&sched));
        let pooled = threaded::run(&sched, workload.initial_state(&sched));
        assert_eq!(legacy, pooled, "{:?}/{}", collective, alg.name());
    }
}

#[test]
fn a_1024_rank_schedule_runs_on_a_bounded_worker_set() {
    // The pool multiplexes all 1024 ranks over a fixed handful of workers;
    // the seed executor would have spawned 1024 OS threads for this call.
    // (An explicit 4-worker pool, so the asserted bound is a property of
    // the executor, not of the host's core count.)
    let pool = ExecutorPool::new(4);
    assert_eq!(
        pool.num_workers(),
        4,
        "pool size is fixed at construction, independent of rank count"
    );
    for (collective, name) in [
        (Collective::Allreduce, "bine-large"),
        (Collective::Allgather, "bine"),
    ] {
        let sched = build(collective, name, 1024, 0).unwrap();
        let workload = Workload::for_schedule(&sched, 1);
        let compiled_sched = Arc::new(sched.compile());
        let finals = pool.run(&compiled_sched, workload.initial_state(&sched));
        if let Err(e) = verify::verify(&workload, &finals) {
            panic!("{collective:?}/{name} p=1024 (pool): {e}");
        }
    }
}

#[test]
fn reduce_scatter_strategy_variants_are_all_correct() {
    for name in [
        "bine-permute",
        "bine-block-by-block",
        "bine-send",
        "bine-two-transmissions",
    ] {
        for p in [4usize, 16, 128] {
            let sched = build(Collective::ReduceScatter, name, p, 0).unwrap();
            assert!(
                verify::run_and_verify(&sched, 2).is_ok(),
                "strategy {name} failed at p = {p}"
            );
        }
    }
}

#[test]
fn irregular_edge_cases_execute_identically_on_every_executor() {
    // Deterministic edge-case matrix for the v-variants: zero-count ranks
    // (the one-heavy distribution), equal counts (the regular special
    // case), a linear skew, each plain and under segmentation — where a
    // zero-count segment splits into chunks that are all empty. Every
    // executor must agree with the reference bit for bit and satisfy the
    // counts-weighted post-condition.
    let p = 16;
    let root = 5;
    for collective in IRREGULAR_COLLECTIVES {
        for alg in irregular_algorithms(collective) {
            for dist in SizeDist::ALL {
                let counts = dist.counts(p, root);
                for name in [alg.name().to_string(), format!("{}+seg3", alg.name())] {
                    let sched = build_irregular(collective, &name, p, root, &counts)
                        .unwrap_or_else(|| panic!("{collective:?}/{name} did not build"));
                    assert!(sched.validate().is_ok(), "{collective:?}/{name}");
                    let workload = Workload::for_schedule(&sched, 2);
                    let reference =
                        sequential::run_reference(&sched, workload.initial_state(&sched));
                    let seq = sequential::run(&sched, workload.initial_state(&sched));
                    assert_eq!(
                        seq,
                        reference,
                        "sequential: {collective:?}/{name} dist={}",
                        dist.name()
                    );
                    let comp = compiled::run(&sched.compile(), workload.initial_state(&sched));
                    assert_eq!(
                        comp,
                        reference,
                        "compiled: {collective:?}/{name} dist={}",
                        dist.name()
                    );
                    let thr = threaded::run(&sched, workload.initial_state(&sched));
                    assert_eq!(
                        thr,
                        reference,
                        "pool: {collective:?}/{name} dist={}",
                        dist.name()
                    );
                    if let Err(e) = verify::verify(&workload, &reference) {
                        panic!("{collective:?}/{name} dist={}: {e}", dist.name());
                    }
                }
            }
        }
    }
}

#[test]
fn large_rank_counts_still_verify() {
    // A coarser sweep at larger scale to catch issues that only appear with
    // deeper trees/butterflies.
    for (collective, name) in [
        (Collective::Allreduce, "bine-large"),
        (Collective::Allreduce, "bine-small"),
        (Collective::Broadcast, "bine-scatter-allgather"),
        (Collective::ReduceScatter, "bine-permute"),
        (Collective::Allgather, "bine"),
        (Collective::Gather, "bine"),
        (Collective::Scatter, "bine"),
        (Collective::Alltoall, "bine"),
    ] {
        let sched = build(collective, name, 256, 0).unwrap();
        assert!(
            verify::run_and_verify(&sched, 1).is_ok(),
            "{collective:?}/{name} failed at p = 256"
        );
    }
}
