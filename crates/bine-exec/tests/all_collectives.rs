//! End-to-end correctness: every algorithm of every collective, executed over
//! real data on both executors, must satisfy the MPI post-condition of its
//! collective. This is the repository's substitute for the paper's
//! correctness claim that any rank-to-node mapping yields a valid algorithm.

use bine_exec::state::Workload;
use bine_exec::{sequential, threaded, verify};
use bine_sched::{algorithms, build, Collective};

#[test]
fn every_algorithm_is_correct_on_the_sequential_executor() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            for p in [2usize, 4, 8, 32, 64] {
                for root in [0, p - 1, p / 3] {
                    let sched = build(collective, alg.name, p, root).expect(alg.name);
                    let workload = Workload::for_schedule(&sched, 3);
                    let finals = sequential::run(&sched, workload.initial_state(&sched));
                    if let Err(e) = verify::verify(&workload, &finals) {
                        panic!("{:?}/{} p={p} root={root}: {e}", collective, alg.name);
                    }
                    if !collective.is_rooted() {
                        break; // the root is irrelevant, no need to repeat
                    }
                }
            }
        }
    }
}

#[test]
fn every_algorithm_is_correct_on_the_threaded_executor() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            let p = 16;
            let sched = build(collective, alg.name, p, 5).expect(alg.name);
            let workload = Workload::for_schedule(&sched, 2);
            let finals = threaded::run(&sched, workload.initial_state(&sched));
            if let Err(e) = verify::verify(&workload, &finals) {
                panic!("{:?}/{} (threaded): {e}", collective, alg.name);
            }
        }
    }
}

#[test]
fn threaded_and_sequential_executors_agree_exactly() {
    for collective in Collective::ALL {
        for alg in algorithms(collective) {
            let p = 32;
            let sched = build(collective, alg.name, p, 7).expect(alg.name);
            let workload = Workload::for_schedule(&sched, 2);
            let seq = sequential::run(&sched, workload.initial_state(&sched));
            let thr = threaded::run(&sched, workload.initial_state(&sched));
            assert_eq!(seq, thr, "{:?}/{}", collective, alg.name);
        }
    }
}

#[test]
fn reduce_scatter_strategy_variants_are_all_correct() {
    for name in ["bine-permute", "bine-block-by-block", "bine-send", "bine-two-transmissions"] {
        for p in [4usize, 16, 128] {
            let sched = build(Collective::ReduceScatter, name, p, 0).unwrap();
            assert!(
                verify::run_and_verify(&sched, 2).is_ok(),
                "strategy {name} failed at p = {p}"
            );
        }
    }
}

#[test]
fn large_rank_counts_still_verify() {
    // A coarser sweep at larger scale to catch issues that only appear with
    // deeper trees/butterflies.
    for (collective, name) in [
        (Collective::Allreduce, "bine-large"),
        (Collective::Allreduce, "bine-small"),
        (Collective::Broadcast, "bine-scatter-allgather"),
        (Collective::ReduceScatter, "bine-permute"),
        (Collective::Allgather, "bine"),
        (Collective::Gather, "bine"),
        (Collective::Scatter, "bine"),
        (Collective::Alltoall, "bine"),
    ] {
        let sched = build(collective, name, 256, 0).unwrap();
        assert!(
            verify::run_and_verify(&sched, 1).is_ok(),
            "{collective:?}/{name} failed at p = 256"
        );
    }
}
