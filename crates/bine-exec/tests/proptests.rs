//! Property-based end-to-end tests: random collective, algorithm, rank count
//! and root — the executed result must always satisfy the collective's
//! post-condition.

use bine_exec::state::Workload;
use bine_exec::{sequential, verify};
use bine_sched::{algorithms, build, Collective};
use proptest::prelude::*;

fn any_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_algorithm_instances_verify(
        collective in any_collective(),
        s in 1u32..=7,
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        elems in 1usize..4,
    ) {
        let p = 1usize << s;
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let root = root_seed % p;
        let sched = build(collective, alg.name, p, root).expect(alg.name);
        prop_assert!(sched.validate().is_ok());
        let workload = Workload::for_schedule(&sched, elems);
        let finals = sequential::run(&sched, workload.initial_state(&sched));
        if let Err(e) = verify::verify(&workload, &finals) {
            return Err(TestCaseError::fail(format!("{:?}/{}: {e}", collective, alg.name)));
        }
    }

    #[test]
    fn schedules_never_exceed_one_send_and_receive_per_rank_per_step(
        collective in any_collective(),
        s in 1u32..=6,
        alg_seed in 0usize..100,
    ) {
        let p = 1usize << s;
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let sched = build(collective, alg.name, p, 0).expect(alg.name);
        prop_assert!(sched.validate().is_ok(), "{}", alg.name);
    }
}
