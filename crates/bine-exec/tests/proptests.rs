//! Property-based end-to-end tests: random collective, algorithm, rank count
//! and root — the executed result must always satisfy the collective's
//! post-condition.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bine_exec::state::Workload;
use bine_exec::{compiled, sequential, threaded, verify};
use bine_sched::{
    algorithms, build, build_irregular, irregular_algorithms, Collective, Schedule, SizeDist,
    IRREGULAR_COLLECTIVES,
};
use proptest::prelude::*;

fn any_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

fn any_irregular_collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(IRREGULAR_COLLECTIVES.to_vec())
}

fn any_dist() -> impl Strategy<Value = SizeDist> {
    prop::sample::select(SizeDist::ALL.to_vec())
}

/// Rank counts the executor-equivalence property is checked at: powers of
/// two (every algorithm) and non-powers of two (the algorithms whose
/// generators support them, e.g. the ring family).
fn any_rank_count() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 4, 8, 16, 32, 64, 3, 5, 6, 7, 12, 24, 48])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_algorithm_instances_verify(
        collective in any_collective(),
        s in 1u32..=7,
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        elems in 1usize..4,
    ) {
        let p = 1usize << s;
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let root = root_seed % p;
        let sched = build(collective, alg.name(), p, root).unwrap_or_else(|| panic!("{}", alg.name()));
        prop_assert!(sched.validate().is_ok());
        let workload = Workload::for_schedule(&sched, elems);
        let finals = sequential::run(&sched, workload.initial_state(&sched));
        if let Err(e) = verify::verify(&workload, &finals) {
            return Err(TestCaseError::fail(format!("{:?}/{}: {e}", collective, alg.name())));
        }
    }

    #[test]
    fn schedules_never_exceed_one_send_and_receive_per_rank_per_step(
        collective in any_collective(),
        s in 1u32..=6,
        alg_seed in 0usize..100,
    ) {
        let p = 1usize << s;
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let sched = build(collective, alg.name(), p, 0).unwrap_or_else(|| panic!("{}", alg.name()));
        prop_assert!(sched.validate().is_ok(), "{}", alg.name());
    }

    #[test]
    fn all_executors_produce_identical_final_states(
        collective in any_collective(),
        p in any_rank_count(),
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        elems in 1usize..4,
    ) {
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let root = root_seed % p;
        // Some generators only support power-of-two rank counts (the paper's
        // restriction); a build panic at a non-pow2 count skips this case,
        // everything that builds must execute identically on every executor.
        let built: Option<Schedule> = catch_unwind(AssertUnwindSafe(|| {
            build(collective, alg.name(), p, root)
        })).ok().flatten();
        let Some(sched) = built else { return Ok(()) };
        if sched.validate().is_err() {
            // Non-pow2 counts can produce structurally invalid schedules in
            // pow2-only generators without panicking; equivalence is only
            // claimed for valid schedules.
            return Ok(());
        }
        let workload = Workload::for_schedule(&sched, elems);
        let reference = catch_unwind(AssertUnwindSafe(|| {
            sequential::run_reference(&sched, workload.initial_state(&sched))
        }));
        // A generator that silently mis-builds at unsupported counts may
        // reference blocks nobody holds; the reference interpreter panics,
        // and equivalence requires every executor to reject it the same way.
        let Ok(reference) = reference else {
            for (name, outcome) in [
                ("sequential", catch_unwind(AssertUnwindSafe(|| sequential::run(&sched, workload.initial_state(&sched))))),
                ("compiled", catch_unwind(AssertUnwindSafe(|| compiled::run(&sched.compile(), workload.initial_state(&sched))))),
                ("pool", catch_unwind(AssertUnwindSafe(|| threaded::run(&sched, workload.initial_state(&sched))))),
            ] {
                prop_assert!(outcome.is_err(), "{name} accepted a schedule the reference rejects ({:?}/{} p={p})", collective, alg.name());
            }
            return Ok(());
        };
        let seq = sequential::run(&sched, workload.initial_state(&sched));
        prop_assert_eq!(&seq, &reference, "sequential: {:?}/{} p={} root={}", collective, alg.name(), p, root);
        let comp = compiled::run(&sched.compile(), workload.initial_state(&sched));
        prop_assert_eq!(&comp, &reference, "compiled: {:?}/{} p={} root={}", collective, alg.name(), p, root);
        let pooled = threaded::run(&sched, workload.initial_state(&sched));
        prop_assert_eq!(&pooled, &reference, "pool: {:?}/{} p={} root={}", collective, alg.name(), p, root);
    }

    // The pipelining transform (`bine_sched::segment`) must be a semantic
    // no-op: a segmented schedule partitions each message's blocks over
    // sub-steps, so every block sees the same transfers and reductions in
    // the same order, and the final states of every executor are
    // bit-identical to running the unsegmented schedule.
    #[test]
    fn segmented_schedules_execute_bit_identically(
        collective in any_collective(),
        s in 1u32..=6,
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        chunks in 2usize..=6,
        elems in 1usize..4,
    ) {
        let p = 1usize << s;
        let algs = algorithms(collective);
        let alg = &algs[alg_seed % algs.len()];
        let root = root_seed % p;
        let sched = build(collective, alg.name(), p, root).unwrap_or_else(|| panic!("{}", alg.name()));
        let seg = sched.segmented(chunks);
        prop_assert!(seg.validate().is_ok(), "{}+seg{chunks}", alg.name());
        let workload = Workload::for_schedule(&sched, elems);
        let reference = sequential::run_reference(&sched, workload.initial_state(&sched));
        for (name, finals) in [
            ("reference", sequential::run_reference(&seg, workload.initial_state(&seg))),
            ("sequential", sequential::run(&seg, workload.initial_state(&seg))),
            ("compiled", compiled::run(&seg.compile(), workload.initial_state(&seg))),
            ("pool", threaded::run(&seg, workload.initial_state(&seg))),
        ] {
            prop_assert_eq!(
                &finals, &reference,
                "{} on {}+seg{}: p={} root={}", name, alg.name(), chunks, p, root
            );
        }
        if let Err(e) = verify::verify(&workload, &reference) {
            return Err(TestCaseError::fail(format!("{:?}/{}: {e}", collective, alg.name())));
        }
    }

    // The irregular (v-variant) leg of the equivalence matrix: every
    // buildable v-variant schedule — any size distribution, any root, any
    // segmentation, pow2 and non-pow2 rank counts alike — executes
    // bit-identically on all three executors and satisfies the collective's
    // counts-weighted post-condition. Zero-count segments (the one-heavy
    // distribution) must flow through every executor the same way as any
    // other block.
    #[test]
    fn irregular_schedules_execute_identically_on_all_executors(
        collective in any_irregular_collective(),
        p in any_rank_count(),
        dist in any_dist(),
        alg_seed in 0usize..100,
        root_seed in 0usize..1000,
        chunks in 1usize..=4,
        elems in 1usize..4,
    ) {
        let algs = irregular_algorithms(collective);
        let alg = algs[alg_seed % algs.len()];
        let root = root_seed % p;
        let counts = dist.counts(p, root);
        let name = if chunks > 1 {
            format!("{}+seg{chunks}", alg.name())
        } else {
            alg.name().to_string()
        };
        // The butterfly-backed variants only exist at pow2 rank counts — a
        // build panic skips the case, exactly as in the regular matrix.
        let built: Option<Schedule> = catch_unwind(AssertUnwindSafe(|| {
            build_irregular(collective, &name, p, root, &counts)
        })).ok().flatten();
        let Some(sched) = built else { return Ok(()) };
        if sched.validate().is_err() {
            return Ok(());
        }
        prop_assert!(sched.counts.is_some(), "irregular schedule lost its counts");
        let workload = Workload::for_schedule(&sched, elems);
        let reference = catch_unwind(AssertUnwindSafe(|| {
            sequential::run_reference(&sched, workload.initial_state(&sched))
        }));
        let Ok(reference) = reference else {
            for (exec, outcome) in [
                ("sequential", catch_unwind(AssertUnwindSafe(|| sequential::run(&sched, workload.initial_state(&sched))))),
                ("compiled", catch_unwind(AssertUnwindSafe(|| compiled::run(&sched.compile(), workload.initial_state(&sched))))),
                ("pool", catch_unwind(AssertUnwindSafe(|| threaded::run(&sched, workload.initial_state(&sched))))),
            ] {
                prop_assert!(
                    outcome.is_err(),
                    "{exec} accepted an irregular schedule the reference rejects \
                     ({:?}/{name} p={p} dist={})",
                    collective, dist.name()
                );
            }
            return Ok(());
        };
        for (exec, finals) in [
            ("sequential", sequential::run(&sched, workload.initial_state(&sched))),
            ("compiled", compiled::run(&sched.compile(), workload.initial_state(&sched))),
            ("pool", threaded::run(&sched, workload.initial_state(&sched))),
        ] {
            prop_assert_eq!(
                &finals, &reference,
                "{} on {:?}/{} p={} root={} dist={}",
                exec, collective, &name, p, root, dist.name()
            );
        }
        if let Err(e) = verify::verify(&workload, &reference) {
            return Err(TestCaseError::fail(format!(
                "{:?}/{name} p={p} dist={}: {e}", collective, dist.name()
            )));
        }
    }

    // The doubly-pipelined dual-root allreduce, pinned explicitly: the two
    // interleaved trees reduce and broadcast concurrently, which makes its
    // step structure unlike anything else in the catalog — every executor
    // and every segmentation must still agree with the reference bit for
    // bit, at every power-of-two rank count.
    #[test]
    fn dual_root_allreduce_is_bit_identical_across_executors(
        s in 1u32..=6,
        chunks in 1usize..=6,
        elems in 1usize..4,
    ) {
        let p = 1usize << s;
        let sched = build(Collective::Allreduce, "dual-root", p, 0).expect("dual-root");
        let seg = sched.segmented(chunks);
        prop_assert!(seg.validate().is_ok(), "dual-root+seg{chunks} p={p}");
        let workload = Workload::for_schedule(&sched, elems);
        let reference = sequential::run_reference(&sched, workload.initial_state(&sched));
        for (exec, finals) in [
            ("reference", sequential::run_reference(&seg, workload.initial_state(&seg))),
            ("sequential", sequential::run(&seg, workload.initial_state(&seg))),
            ("compiled", compiled::run(&seg.compile(), workload.initial_state(&seg))),
            ("pool", threaded::run(&seg, workload.initial_state(&seg))),
        ] {
            prop_assert_eq!(
                &finals, &reference,
                "{} on dual-root+seg{}: p={}", exec, chunks, p
            );
        }
        if let Err(e) = verify::verify(&workload, &reference) {
            return Err(TestCaseError::fail(format!("dual-root p={p}: {e}")));
        }
    }

    // Synthesized schedules enter production through the same executors as
    // the catalog, but their dataflow is derived from a topology view
    // instead of a closed form — so executor equivalence (and the
    // collective post-condition) is asserted over random views too:
    // random island structure, power-of-two and non-power-of-two rank
    // counts, random bandwidth hierarchy, random root, with and without
    // segmentation.
    #[test]
    fn synthesized_schedules_execute_bit_identically_on_all_executors(
        groups in prop::collection::vec(1usize..7, 1..5).prop_map(|mut g| { g[0] += 1; g }),
        local_seed in 0usize..3,
        global_seed in 0usize..3,
        collective_seed in 0usize..3,
        root_seed in 0usize..1000,
        chunks in 1usize..=4,
        elems in 1usize..4,
    ) {
        let local = [12.5f64, 100.0, 400.0][local_seed];
        let global = [2.5f64, 25.0, 100.0][global_seed];
        let view = bine_sched::TopologyView::clustered(&groups, (local, 0.3), (global, 25.0))
            .expect("non-empty groups build");
        let collective = [Collective::Broadcast, Collective::Reduce, Collective::Allreduce]
            [collective_seed];
        let p = view.num_ranks();
        let root = root_seed % p;
        for id in bine_sched::synth_algorithms(collective, &view) {
            let spec = bine_sched::SynthSpec::parse(id.name()).expect("canonical name");
            // ForestColl's rate-optimal tree count is root-dependent: a k
            // enumerated for root 0 may admit no k edge-disjoint spanning
            // trees from another root. The provider returns None there and
            // serving falls back; only the tuned root must always build.
            let Some(sched) = spec.synthesize(collective, &view, root) else {
                prop_assert!(root != 0, "{} p={p}: unbuildable at the tuned root", id.name());
                continue;
            };
            prop_assert!(sched.validate().is_ok(), "{} p={p} root={root}", id.name());
            let seg = sched.segmented(chunks);
            let workload = Workload::for_schedule(&seg, elems);
            let reference = sequential::run_reference(&seg, workload.initial_state(&seg));
            for (exec, finals) in [
                ("sequential", sequential::run(&seg, workload.initial_state(&seg))),
                ("compiled", compiled::run(&seg.compile(), workload.initial_state(&seg))),
                ("pool", threaded::run(&seg, workload.initial_state(&seg))),
            ] {
                prop_assert_eq!(
                    &finals, &reference,
                    "{} on {}+seg{}: p={} root={}", exec, id.name(), chunks, p, root
                );
            }
            if let Err(e) = verify::verify(&workload, &reference) {
                return Err(TestCaseError::fail(format!(
                    "{}/{:?} p={p} root={root} chunks={chunks}: {e}", id.name(), collective
                )));
            }
        }
    }
}
