//! Deterministic single-threaded schedule interpreters.
//!
//! Steps are executed synchronously: within a step every message reads the
//! sender's state *as it was at the beginning of the step*, mirroring the
//! semantics of a bulk-synchronous message-passing round.
//!
//! Two interpreters live here:
//!
//! * [`run`] — the zero-copy interpreter: instead of snapshotting all
//!   per-rank states (the seed executor deep-copied O(ranks × elements) per
//!   step), it gathers the shared payloads of the step's messages (refcount
//!   bumps) and then applies them, so per-step cost is proportional to the
//!   data actually moved.
//! * [`run_reference`] — the seed interpreter, preserved verbatim including
//!   its full per-step deep-copy snapshot. It is the semantic baseline every
//!   other executor (zero-copy sequential, compiled, thread pool) is
//!   cross-checked bit-identical against, and the "naive" side of the
//!   compiled-vs-naive benchmarks.

use bine_sched::{Schedule, TransferKind};

use crate::state::{Block, BlockStore};

/// Executes `schedule` starting from `initial` per-rank states and returns
/// the final per-rank states. Zero-copy: no per-step state snapshot is
/// taken; only the payloads in flight are reference-bumped.
///
/// # Panics
/// Panics if a message references a block its sender does not hold — that is
/// always a bug in the schedule generator, not a data error.
pub fn run(schedule: &Schedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    assert_eq!(
        initial.len(),
        schedule.num_ranks,
        "initial state must have one store per rank"
    );
    let mut states = initial;
    let mut payloads: Vec<Block> = Vec::new();
    for (step_idx, step) in schedule.steps.iter().enumerate() {
        // Gather phase: read every payload of the step before any state
        // mutates, so all messages are logically simultaneous. Cloning a
        // shared payload is a refcount bump.
        payloads.clear();
        for m in &step.messages {
            for block in &m.blocks {
                let value = states[m.src].get_shared(block).unwrap_or_else(|| {
                    panic!(
                        "step {step_idx}: rank {} sends block {block:?} it does not hold ({})",
                        m.src, schedule.algorithm
                    )
                });
                payloads.push(Block::clone(value));
            }
        }
        // Apply phase: same message order as the reference interpreter.
        let mut next = payloads.drain(..);
        for m in &step.messages {
            for block in &m.blocks {
                let value = next.next().expect("payload count mismatch");
                match m.kind {
                    TransferKind::Copy => states[m.dst].insert(*block, value),
                    TransferKind::Reduce => states[m.dst].reduce(*block, &value),
                }
            }
        }
        drop(next);
    }
    states
}

/// The seed interpreter: snapshots **all** per-rank states at every step via
/// a deep copy, then applies the messages against the snapshot.
///
/// Kept as the executable semantic definition of a schedule (and as the
/// benchmark baseline); all optimised executors must produce bit-identical
/// results.
pub fn run_reference(schedule: &Schedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    assert_eq!(
        initial.len(),
        schedule.num_ranks,
        "initial state must have one store per rank"
    );
    let mut states = initial;
    for (step_idx, step) in schedule.steps.iter().enumerate() {
        // Snapshot the pre-step state so that all messages of a step are
        // logically simultaneous. Deliberately a deep copy — this is the
        // seed executor's O(ranks × elements) per-step cost.
        let snapshot: Vec<BlockStore> = states.iter().map(BlockStore::deep_clone).collect();
        for m in &step.messages {
            for block in &m.blocks {
                let value = snapshot[m.src].get(block).unwrap_or_else(|| {
                    panic!(
                        "step {step_idx}: rank {} sends block {block:?} it does not hold ({})",
                        m.src, schedule.algorithm
                    )
                });
                match m.kind {
                    TransferKind::Copy => states[m.dst].insert(*block, value.clone()),
                    TransferKind::Reduce => states[m.dst].reduce(*block, value),
                }
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Workload;
    use bine_sched::collectives::{broadcast, BroadcastAlg};
    use bine_sched::{algorithms, build, BlockId, Collective};

    #[test]
    fn broadcast_tree_delivers_the_root_vector() {
        let p = 16;
        let sched = broadcast(p, 2, BroadcastAlg::BineTree);
        let w = Workload::for_schedule(&sched, 4);
        let finals = run(&sched, w.initial_state(&sched));
        let expected = w.full_vector(2);
        for (r, state) in finals.iter().enumerate() {
            assert_eq!(state.get(&BlockId::Full), Some(&expected), "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn missing_blocks_are_detected() {
        let p = 8;
        let sched = broadcast(p, 0, BroadcastAlg::BineTree);
        // Start from an empty state: the root has nothing to send.
        let empty = (0..p).map(|_| BlockStore::new()).collect();
        run(&sched, empty);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn reference_detects_missing_blocks_too() {
        let p = 8;
        let sched = broadcast(p, 0, BroadcastAlg::BineTree);
        let empty = (0..p).map(|_| BlockStore::new()).collect();
        run_reference(&sched, empty);
    }

    #[test]
    fn zero_copy_interpreter_matches_the_reference_exactly() {
        for collective in Collective::ALL {
            for alg in algorithms(collective) {
                let sched = build(collective, alg.name(), 16, 3)
                    .unwrap_or_else(|| panic!("{}", alg.name()));
                let w = Workload::for_schedule(&sched, 2);
                let fast = run(&sched, w.initial_state(&sched));
                let reference = run_reference(&sched, w.initial_state(&sched));
                assert_eq!(fast, reference, "{:?}/{}", collective, alg.name());
            }
        }
    }
}
