//! Deterministic single-threaded schedule interpreter.
//!
//! Steps are executed synchronously: within a step every message reads the
//! sender's state *as it was at the beginning of the step*, mirroring the
//! semantics of a bulk-synchronous message-passing round. This interpreter is
//! the reference implementation against which the multi-threaded executor is
//! checked.

use bine_sched::{Schedule, TransferKind};

use crate::state::BlockStore;

/// Executes `schedule` starting from `initial` per-rank states and returns
/// the final per-rank states.
///
/// # Panics
/// Panics if a message references a block its sender does not hold — that is
/// always a bug in the schedule generator, not a data error.
pub fn run(schedule: &Schedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    assert_eq!(
        initial.len(),
        schedule.num_ranks,
        "initial state must have one store per rank"
    );
    let mut states = initial;
    for (step_idx, step) in schedule.steps.iter().enumerate() {
        // Snapshot the pre-step state so that all messages of a step are
        // logically simultaneous.
        let snapshot = states.clone();
        for m in &step.messages {
            for block in &m.blocks {
                let value = snapshot[m.src].get(block).unwrap_or_else(|| {
                    panic!(
                        "step {step_idx}: rank {} sends block {block:?} it does not hold ({})",
                        m.src, schedule.algorithm
                    )
                });
                match m.kind {
                    TransferKind::Copy => states[m.dst].insert(*block, value.clone()),
                    TransferKind::Reduce => states[m.dst].reduce(*block, value),
                }
            }
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Workload;
    use bine_sched::collectives::{broadcast, BroadcastAlg};
    use bine_sched::BlockId;

    #[test]
    fn broadcast_tree_delivers_the_root_vector() {
        let p = 16;
        let sched = broadcast(p, 2, BroadcastAlg::BineTree);
        let w = Workload::for_schedule(&sched, 4);
        let finals = run(&sched, w.initial_state(&sched));
        let expected = w.full_vector(2);
        for (r, state) in finals.iter().enumerate() {
            assert_eq!(state.get(&BlockId::Full), Some(&expected), "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn missing_blocks_are_detected() {
        let p = 8;
        let sched = broadcast(p, 0, BroadcastAlg::BineTree);
        // Start from an empty state: the root has nothing to send.
        let empty = (0..p).map(|_| BlockStore::new()).collect();
        run(&sched, empty);
    }
}
