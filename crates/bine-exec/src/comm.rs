//! A high-level, MPI-like facade over the schedule generators and the
//! multi-threaded executor.
//!
//! [`Cluster`] is the entry point a downstream user would adopt: it simulates
//! `p` ranks (one thread per rank) and exposes the eight collectives over
//! plain `Vec<f64>` buffers, with the algorithm selectable per call. The
//! quickstart example and the integration tests are written against this API.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use bine_sched::collectives::{
    allgather as allgather_sched, allreduce as allreduce_sched, alltoall as alltoall_sched,
    broadcast as broadcast_sched, gather as gather_sched, reduce as reduce_sched,
    reduce_scatter as reduce_scatter_sched, scatter as scatter_sched, AllgatherAlg, AllreduceAlg,
    AlltoallAlg, BroadcastAlg, GatherAlg, ReduceAlg, ReduceScatterAlg, ScatterAlg,
};
use bine_sched::{BlockId, Collective, CompiledSchedule, Schedule};

use crate::pool::ExecutorPool;
use crate::state::BlockStore;

/// A simulated cluster of `p` ranks executing collectives over real data.
///
/// `p` must be a power of two — the same restriction the paper's evaluation
/// uses ("we report results only for power-of-two node counts"); arbitrary
/// rank counts at the schedule level are handled by the benchmark harness via
/// power-of-two folding.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    num_ranks: usize,
}

impl Cluster {
    /// Creates a cluster of `num_ranks` simulated ranks.
    ///
    /// # Panics
    /// Panics if `num_ranks` is not a power of two.
    pub fn new(num_ranks: usize) -> Self {
        assert!(
            num_ranks.is_power_of_two(),
            "Cluster currently requires a power-of-two rank count, got {num_ranks}"
        );
        Self { num_ranks }
    }

    /// Number of simulated ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn check_inputs(&self, inputs: &[Vec<f64>]) -> usize {
        assert_eq!(
            inputs.len(),
            self.num_ranks,
            "one input buffer per rank required"
        );
        let len = inputs[0].len();
        assert!(
            inputs.iter().all(|v| v.len() == len),
            "all input buffers must have equal length"
        );
        len
    }

    /// Splits a vector into `p` equal segments.
    fn segments(&self, v: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(
            v.len() % self.num_ranks,
            0,
            "vector length {} must be divisible by the rank count {}",
            v.len(),
            self.num_ranks
        );
        let seg = v.len() / self.num_ranks;
        (0..self.num_ranks)
            .map(|i| v[i * seg..(i + 1) * seg].to_vec())
            .collect()
    }

    /// Returns the compiled schedule for one collective call, building and
    /// compiling it only on a cache miss — steady-state calls (e.g. an
    /// allreduce per training iteration) do no per-call schedule-sized work.
    ///
    /// The cache is keyed on `(collective, algorithm name, rank count,
    /// root)`, which is sound *only* because this is private to [`Cluster`]
    /// and every schedule comes from the catalog generators, which are
    /// deterministic functions of exactly that tuple. Do not route
    /// caller-constructed schedules through here.
    fn compiled_for(
        collective: Collective,
        algorithm: &str,
        num_ranks: usize,
        root: usize,
        build: impl FnOnce() -> Schedule,
    ) -> Arc<CompiledSchedule> {
        type Key = (Collective, String, usize, usize);
        static CACHE: OnceLock<Mutex<HashMap<Key, Arc<CompiledSchedule>>>> = OnceLock::new();
        /// Bound on cached schedules; collectives at a handful of rank
        /// counts stay far below this, and a sweep over many sizes must not
        /// grow the process without limit.
        const MAX_CACHED: usize = 256;
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (collective, algorithm.to_string(), num_ranks, root);
        if let Some(hit) = cache
            .lock()
            .expect("compiled-schedule cache poisoned")
            .get(&key)
        {
            return Arc::clone(hit);
        }
        // Build and compile outside the lock.
        let schedule = build();
        debug_assert_eq!(
            (schedule.collective, schedule.num_ranks, schedule.root),
            (collective, num_ranks, root),
            "cache key does not describe the built schedule"
        );
        let compiled = Arc::new(schedule.compile());
        let mut cache = cache.lock().expect("compiled-schedule cache poisoned");
        if cache.len() >= MAX_CACHED {
            cache.clear();
        }
        Arc::clone(cache.entry(key).or_insert(compiled))
    }

    fn run(
        &self,
        collective: Collective,
        algorithm: &str,
        root: usize,
        build: impl FnOnce() -> Schedule,
        initial: Vec<BlockStore>,
    ) -> Vec<BlockStore> {
        let compiled = Self::compiled_for(collective, algorithm, self.num_ranks, root, build);
        ExecutorPool::global().run(&compiled, initial)
    }

    fn extract_vector(&self, store: &BlockStore, len: usize) -> Vec<f64> {
        if let Some(full) = store.get(&BlockId::Full) {
            return full.clone();
        }
        let seg = len / self.num_ranks;
        let mut out = vec![0.0; len];
        for i in 0..self.num_ranks {
            let block = store
                .get(&BlockId::Segment(i as u32))
                .unwrap_or_else(|| panic!("rank state is missing segment {i}"));
            out[i * seg..(i + 1) * seg].copy_from_slice(block);
        }
        out
    }

    /// Allreduce: returns, for every rank, the elementwise sum of all ranks'
    /// inputs. For segment-based algorithms the vector length must be a
    /// multiple of the rank count.
    pub fn allreduce(&self, inputs: &[Vec<f64>], alg: AllreduceAlg) -> Vec<Vec<f64>> {
        let len = self.check_inputs(inputs);
        let uses_segments = matches!(
            alg,
            AllreduceAlg::BineLarge
                | AllreduceAlg::Rabenseifner
                | AllreduceAlg::Ring
                | AllreduceAlg::Swing
        );
        let mut init: Vec<BlockStore> = Vec::with_capacity(self.num_ranks);
        for input in inputs {
            let mut store = BlockStore::new();
            if uses_segments {
                for (i, seg) in self.segments(input).into_iter().enumerate() {
                    store.insert(BlockId::Segment(i as u32), seg);
                }
            } else {
                store.insert(BlockId::Full, input.clone());
            }
            init.push(store);
        }
        self.run(
            Collective::Allreduce,
            alg.name(),
            0,
            || allreduce_sched(self.num_ranks, alg),
            init,
        )
        .iter()
        .map(|s| self.extract_vector(s, len))
        .collect()
    }

    /// Broadcast: every rank receives a copy of `data` from `root`.
    pub fn broadcast(&self, data: &[f64], root: usize, alg: BroadcastAlg) -> Vec<Vec<f64>> {
        let uses_segments = matches!(
            alg,
            BroadcastAlg::BineScatterAllgather | BroadcastAlg::ScatterAllgather
        );
        let mut init: Vec<BlockStore> = (0..self.num_ranks).map(|_| BlockStore::new()).collect();
        if uses_segments {
            for (i, seg) in self.segments(data).into_iter().enumerate() {
                init[root].insert(BlockId::Segment(i as u32), seg);
            }
        } else {
            init[root].insert(BlockId::Full, data.to_vec());
        }
        self.run(
            Collective::Broadcast,
            alg.name(),
            root,
            || broadcast_sched(self.num_ranks, root, alg),
            init,
        )
        .iter()
        .map(|s| self.extract_vector(s, data.len()))
        .collect()
    }

    /// Reduce: returns the elementwise sum of all inputs, delivered at `root`.
    pub fn reduce(&self, inputs: &[Vec<f64>], root: usize, alg: ReduceAlg) -> Vec<f64> {
        let len = self.check_inputs(inputs);
        let uses_segments = matches!(
            alg,
            ReduceAlg::BineReduceScatterGather | ReduceAlg::ReduceScatterGather
        );
        let mut init: Vec<BlockStore> = Vec::with_capacity(self.num_ranks);
        for input in inputs {
            let mut store = BlockStore::new();
            if uses_segments {
                for (i, seg) in self.segments(input).into_iter().enumerate() {
                    store.insert(BlockId::Segment(i as u32), seg);
                }
            } else {
                store.insert(BlockId::Full, input.clone());
            }
            init.push(store);
        }
        let finals = self.run(
            Collective::Reduce,
            alg.name(),
            root,
            || reduce_sched(self.num_ranks, root, alg),
            init,
        );
        self.extract_vector(&finals[root], len)
    }

    /// Allgather: every rank receives the concatenation of all ranks'
    /// contributions (in rank order).
    pub fn allgather(&self, inputs: &[Vec<f64>], alg: AllgatherAlg) -> Vec<Vec<f64>> {
        let seg_len = self.check_inputs(inputs);
        let init: Vec<BlockStore> = inputs
            .iter()
            .enumerate()
            .map(|(r, v)| {
                let mut store = BlockStore::new();
                store.insert(BlockId::Segment(r as u32), v.clone());
                store
            })
            .collect();
        self.run(
            Collective::Allgather,
            alg.name(),
            0,
            || allgather_sched(self.num_ranks, alg),
            init,
        )
        .iter()
        .map(|s| self.extract_vector(s, seg_len * self.num_ranks))
        .collect()
    }

    /// Reduce-scatter: rank `r` receives segment `r` of the elementwise sum
    /// of all inputs.
    pub fn reduce_scatter(&self, inputs: &[Vec<f64>], alg: ReduceScatterAlg) -> Vec<Vec<f64>> {
        self.check_inputs(inputs);
        let init: Vec<BlockStore> = inputs
            .iter()
            .map(|v| {
                let mut store = BlockStore::new();
                for (i, seg) in self.segments(v).into_iter().enumerate() {
                    store.insert(BlockId::Segment(i as u32), seg);
                }
                store
            })
            .collect();
        self.run(
            Collective::ReduceScatter,
            alg.name(),
            0,
            || reduce_scatter_sched(self.num_ranks, alg),
            init,
        )
        .iter()
        .enumerate()
        .map(|(r, s)| {
            s.get(&BlockId::Segment(r as u32))
                .expect("reduce-scatter result segment missing")
                .clone()
        })
        .collect()
    }

    /// Gather: `root` receives the concatenation of all ranks' contributions.
    pub fn gather(&self, inputs: &[Vec<f64>], root: usize, alg: GatherAlg) -> Vec<f64> {
        let seg_len = self.check_inputs(inputs);
        let init: Vec<BlockStore> = inputs
            .iter()
            .enumerate()
            .map(|(r, v)| {
                let mut store = BlockStore::new();
                store.insert(BlockId::Segment(r as u32), v.clone());
                store
            })
            .collect();
        let finals = self.run(
            Collective::Gather,
            alg.name(),
            root,
            || gather_sched(self.num_ranks, root, alg),
            init,
        );
        self.extract_vector(&finals[root], seg_len * self.num_ranks)
    }

    /// Scatter: rank `r` receives segment `r` of the root's vector.
    pub fn scatter(&self, data: &[f64], root: usize, alg: ScatterAlg) -> Vec<Vec<f64>> {
        let mut init: Vec<BlockStore> = (0..self.num_ranks).map(|_| BlockStore::new()).collect();
        for (i, seg) in self.segments(data).into_iter().enumerate() {
            init[root].insert(BlockId::Segment(i as u32), seg);
        }
        self.run(
            Collective::Scatter,
            alg.name(),
            root,
            || scatter_sched(self.num_ranks, root, alg),
            init,
        )
        .iter()
        .enumerate()
        .map(|(r, s)| {
            s.get(&BlockId::Segment(r as u32))
                .expect("scatter result segment missing")
                .clone()
        })
        .collect()
    }

    /// Alltoall: `inputs[r][d]` is the block rank `r` sends to rank `d`;
    /// the result `out[r][o]` is the block rank `r` received from rank `o`.
    pub fn alltoall(&self, inputs: &[Vec<Vec<f64>>], alg: AlltoallAlg) -> Vec<Vec<Vec<f64>>> {
        assert_eq!(inputs.len(), self.num_ranks);
        assert!(inputs.iter().all(|v| v.len() == self.num_ranks));
        let init: Vec<BlockStore> = inputs
            .iter()
            .enumerate()
            .map(|(r, blocks)| {
                let mut store = BlockStore::new();
                for (d, data) in blocks.iter().enumerate() {
                    store.insert(
                        BlockId::Pairwise {
                            origin: r as u32,
                            dest: d as u32,
                        },
                        data.clone(),
                    );
                }
                store
            })
            .collect();
        self.run(
            Collective::Alltoall,
            alg.name(),
            0,
            || alltoall_sched(self.num_ranks, alg),
            init,
        )
        .iter()
        .enumerate()
        .map(|(r, s)| {
            (0..self.num_ranks)
                .map(|o| {
                    s.get(&BlockId::Pairwise {
                        origin: o as u32,
                        dest: r as u32,
                    })
                    .expect("alltoall result block missing")
                    .clone()
                })
                .collect()
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_allreduce_sums_across_ranks() {
        let cluster = Cluster::new(8);
        let inputs: Vec<Vec<f64>> = (0..8)
            .map(|r| (0..16).map(|j| (r * 16 + j) as f64).collect())
            .collect();
        let expected: Vec<f64> = (0..16)
            .map(|j| (0..8).map(|r| (r * 16 + j) as f64).sum())
            .collect();
        for alg in [
            AllreduceAlg::BineSmall,
            AllreduceAlg::BineLarge,
            AllreduceAlg::Ring,
        ] {
            let out = cluster.allreduce(&inputs, alg);
            for (r, v) in out.iter().enumerate() {
                assert_eq!(v, &expected, "{alg:?} rank {r}");
            }
        }
    }

    #[test]
    fn cluster_broadcast_copies_the_root_buffer() {
        let cluster = Cluster::new(4);
        let data: Vec<f64> = (0..8).map(|x| x as f64 * 1.5).collect();
        for alg in [BroadcastAlg::BineTree, BroadcastAlg::BineScatterAllgather] {
            let out = cluster.broadcast(&data, 2, alg);
            for (r, v) in out.iter().enumerate() {
                assert_eq!(v, &data, "{alg:?} rank {r}");
            }
        }
    }

    #[test]
    fn cluster_alltoall_transposes_blocks() {
        let cluster = Cluster::new(4);
        let inputs: Vec<Vec<Vec<f64>>> = (0..4)
            .map(|r| (0..4).map(|d| vec![(r * 10 + d) as f64]).collect())
            .collect();
        let out = cluster.alltoall(&inputs, AlltoallAlg::Bine);
        for (r, row) in out.iter().enumerate() {
            for (o, block) in row.iter().enumerate() {
                assert_eq!(block, &vec![(o * 10 + r) as f64]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn cluster_rejects_non_power_of_two() {
        Cluster::new(12);
    }
}
