//! Execution of [`CompiledSchedule`]s over dense per-rank state.
//!
//! This is the fast single-threaded path of the crate: block identifiers are
//! pre-interned to dense indices (see [`bine_sched::compile`]), so the inner
//! loop indexes flat `Vec`s instead of hashing `BlockId`s, and payloads are
//! shared [`Block`]s, so moving data is a refcount bump and reductions are
//! copy-on-write. Results are bit-identical to
//! [`crate::sequential::run_reference`]: payloads are gathered from the
//! pre-step state and applied per receiver in schedule order — exactly the
//! order the reference interpreter applies them in.

use bine_sched::{CompiledSchedule, TransferKind};

use crate::state::{Block, BlockStore};

/// The data a single rank holds, in dense form: slot `i` is the payload of
/// the block the schedule interned as index `i`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseState {
    /// One slot per interned block (None = not held).
    slots: Vec<Option<Block>>,
    /// Blocks held by the rank but never referenced by the schedule (e.g.
    /// the alltoall block a rank keeps for itself under an algorithm that
    /// never moves it). Carried through untouched.
    extra: Vec<(bine_sched::BlockId, Block)>,
}

impl DenseState {
    /// Creates an all-empty state with one slot per interned block.
    pub fn empty(num_blocks: usize) -> Self {
        Self {
            slots: vec![None; num_blocks],
            extra: Vec::new(),
        }
    }

    /// The payload in a slot, if held.
    pub fn slot(&self, index: u32) -> Option<&Block> {
        self.slots[index as usize].as_ref()
    }

    /// Number of held blocks (slots plus schedule-untouched extras).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count() + self.extra.len()
    }

    /// Whether the rank holds no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Converts symbolic per-rank stores into dense states for `compiled`.
pub fn to_dense(compiled: &CompiledSchedule, initial: Vec<BlockStore>) -> Vec<DenseState> {
    assert_eq!(
        initial.len(),
        compiled.num_ranks,
        "initial state must have one store per rank"
    );
    let num_blocks = compiled.num_blocks();
    initial
        .into_iter()
        .map(|store| {
            let mut dense = DenseState::empty(num_blocks);
            for (id, payload) in store.into_blocks() {
                match compiled.blocks().index_of(&id) {
                    Some(idx) => dense.slots[idx as usize] = Some(payload),
                    None => dense.extra.push((id, payload)),
                }
            }
            // Deterministic order for the extras (HashMap iteration is not).
            dense.extra.sort_by_key(|(id, _)| *id);
            dense
        })
        .collect()
}

/// Converts dense states back into symbolic per-rank stores.
pub fn from_dense(compiled: &CompiledSchedule, finals: Vec<DenseState>) -> Vec<BlockStore> {
    finals
        .into_iter()
        .map(|dense| {
            let mut store = BlockStore::new();
            for (idx, slot) in dense.slots.into_iter().enumerate() {
                if let Some(payload) = slot {
                    store.insert(compiled.blocks().resolve(idx as u32), payload);
                }
            }
            for (id, payload) in dense.extra {
                store.insert(id, payload);
            }
            store
        })
        .collect()
}

/// Executes `compiled` over dense states, in place.
///
/// # Panics
/// Panics if a send references a block its source rank does not hold.
pub fn run_dense(compiled: &CompiledSchedule, states: &mut [DenseState]) {
    assert_eq!(
        states.len(),
        compiled.num_ranks,
        "one dense state per rank required"
    );
    let mut staging: Vec<Option<Block>> = Vec::new();
    for step in 0..compiled.num_steps() {
        let sends = compiled.step_sends(step);
        if sends.is_empty() {
            continue;
        }
        // Sends are sorted by source rank, not schedule order, so the step's
        // first payload index is the minimum over its sends.
        let payload_base = sends
            .iter()
            .map(|s| s.blocks_start)
            .min()
            .expect("non-empty step") as usize;
        // Gather phase: stage every payload of the step before any state
        // mutates (refcount bumps only). Staging slot k corresponds to the
        // k-th block index of the step, so sends address their payloads by
        // `blocks_start - payload_base`.
        staging.clear();
        staging.resize(compiled.step_payload_count(step), None);
        for send in sends {
            let src = &states[send.src as usize];
            for (k, &block_idx) in compiled.block_index_slice(send).iter().enumerate() {
                let payload = src.slots[block_idx as usize].as_ref().unwrap_or_else(|| {
                    panic!(
                        "step {step}: rank {} sends block {:?} it does not hold ({})",
                        send.src,
                        compiled.blocks().resolve(block_idx),
                        compiled.algorithm
                    )
                });
                staging[send.blocks_start as usize - payload_base + k] =
                    Some(Block::clone(payload));
            }
        }
        // Apply phase: per receiver in schedule order (bit-identical float
        // reduction order to the reference interpreter).
        let step_range = compiled.step_send_range(step);
        for (rank, dst) in states.iter_mut().enumerate() {
            for &send_idx in compiled.recvs_to(step, rank) {
                let send = compiled.send(send_idx as usize);
                debug_assert!(step_range.contains(&(send_idx as usize)));
                for (k, &block_idx) in compiled.block_index_slice(send).iter().enumerate() {
                    let payload = staging[send.blocks_start as usize - payload_base + k]
                        .as_ref()
                        .expect("staged payload missing");
                    apply(dst, block_idx, payload, send.kind);
                }
            }
        }
    }
}

/// Applies one staged payload to a destination slot.
pub(crate) fn apply(dst: &mut DenseState, block_idx: u32, payload: &Block, kind: TransferKind) {
    let slot = &mut dst.slots[block_idx as usize];
    match kind {
        TransferKind::Copy => *slot = Some(Block::clone(payload)),
        TransferKind::Reduce => match slot {
            Some(existing) => {
                assert_eq!(
                    existing.len(),
                    payload.len(),
                    "block length mismatch for dense block {block_idx}"
                );
                for (a, b) in Block::make_mut(existing).iter_mut().zip(payload.iter()) {
                    *a += b;
                }
            }
            // Same semantics as BlockStore::reduce into an absent block: the
            // payload becomes the partial result.
            None => *slot = Some(Block::clone(payload)),
        },
    }
}

/// Executes `compiled` starting from symbolic `initial` stores and returns
/// symbolic final stores (convenience wrapper over [`to_dense`] /
/// [`run_dense`] / [`from_dense`]).
pub fn run(compiled: &CompiledSchedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    let mut dense = to_dense(compiled, initial);
    run_dense(compiled, &mut dense);
    from_dense(compiled, dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use crate::state::Workload;
    use bine_sched::collectives::{alltoall, broadcast, AlltoallAlg, BroadcastAlg};
    use bine_sched::{algorithms, build, BlockId, Collective};

    #[test]
    fn dense_round_trip_preserves_every_block() {
        let sched = alltoall(8, AlltoallAlg::Bine);
        let compiled = sched.compile();
        let w = Workload::for_schedule(&sched, 3);
        let initial = w.initial_state(&sched);
        let round_tripped = from_dense(&compiled, to_dense(&compiled, initial.clone()));
        assert_eq!(initial, round_tripped);
    }

    #[test]
    fn untouched_blocks_survive_execution() {
        let sched = broadcast(8, 0, BroadcastAlg::BineTree);
        let compiled = sched.compile();
        let w = Workload::for_schedule(&sched, 2);
        let mut initial = w.initial_state(&sched);
        // A block the schedule never references must pass through untouched.
        initial[5].insert(BlockId::Segment(77), vec![1.0, 2.0, 3.0]);
        let finals = run(&compiled, initial);
        assert_eq!(
            finals[5].get(&BlockId::Segment(77)),
            Some(&vec![1.0, 2.0, 3.0])
        );
    }

    #[test]
    fn compiled_execution_matches_the_reference_for_every_algorithm() {
        for collective in Collective::ALL {
            for alg in algorithms(collective) {
                let sched = build(collective, alg.name(), 16, 5)
                    .unwrap_or_else(|| panic!("{}", alg.name()));
                let compiled = sched.compile();
                let w = Workload::for_schedule(&sched, 2);
                let fast = run(&compiled, w.initial_state(&sched));
                let reference = sequential::run_reference(&sched, w.initial_state(&sched));
                assert_eq!(fast, reference, "{:?}/{}", collective, alg.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn missing_blocks_are_detected() {
        let sched = broadcast(8, 0, BroadcastAlg::BineTree);
        let compiled = sched.compile();
        let empty = (0..8).map(|_| BlockStore::new()).collect();
        run(&compiled, empty);
    }
}
