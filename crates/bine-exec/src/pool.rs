//! A persistent worker pool for multi-threaded schedule execution.
//!
//! The seed executor spawned one OS thread per simulated rank per run —
//! a 1024-rank schedule meant 1024 thread spawns *every call*. The
//! [`ExecutorPool`] instead keeps a small fixed set of workers (one per
//! available core by default) alive across runs and multiplexes the ranks
//! over them with per-step work queues:
//!
//! * **gather phase** — the step's sends are split across the workers; each
//!   worker reads the shared payloads of its sends (refcount bumps) into a
//!   staging buffer,
//! * **apply phase** — the destination ranks are split across the workers;
//!   each worker applies the staged payloads of its ranks in schedule order.
//!
//! The phase barrier makes the two phases race-free without locking the
//! rank states: gathers only read, applies only write the worker's own
//! ranks. Results are bit-identical to the reference interpreter because
//! each receiver applies its payloads in schedule order — thread scheduling
//! cannot reorder floating-point reductions.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use bine_sched::CompiledSchedule;

use crate::compiled::{self, DenseState};
use crate::state::{Block, BlockStore};

/// One unit of work submitted to the pool via
/// [`ExecutorPool::try_run_batch`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// The panic payload a worker caught, before conversion to [`ExecError`].
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Typed failure of a pool execution: the panic contract of the executor.
///
/// A rank job that panics inside a worker (a reduce op applied to
/// mismatched block lengths, a send of a block the rank does not hold, a
/// user-provided op gone wrong) is caught *at the worker*, the batch drains
/// fully so no in-flight job still references the run's state, and the
/// failure is surfaced to the caller — as this error from
/// [`ExecutorPool::try_run`] / [`ExecutorPool::try_run_dense`], or re-raised
/// verbatim by the panicking entry points. The pool itself remains fully
/// usable afterwards: no poisoned pool locks, no leaked jobs, no dead
/// workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A job panicked on a worker thread; `message` is the panic payload
    /// (`"opaque panic payload"` when it was not a string).
    JobPanicked {
        /// The panic message of the first failing job of the run.
        message: String,
    },
    /// A surviving rank blocked forever on a receive whose sender is dead
    /// (deterministic dead-rank injection, see
    /// [`ExecutorPool::try_run_with_dead`]). Detected by the per-step
    /// bounded-progress watchdog: the step barrier was reached with the
    /// receive still unsatisfiable, which in a real run means the rank
    /// hangs.
    RankDead {
        /// Step at which the stall was detected.
        step: usize,
        /// The dead sending rank the receive waited on.
        src: usize,
        /// The surviving rank that blocked.
        dst: usize,
    },
}

impl ExecError {
    fn from_panic(payload: PanicPayload) -> Self {
        let message = match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(payload) => match payload.downcast::<&'static str>() {
                Ok(s) => (*s).to_owned(),
                Err(_) => "opaque panic payload".to_owned(),
            },
        };
        ExecError::JobPanicked { message }
    }

    /// The panic message of the failing job, or a static description for
    /// non-panic failures (the step and rank numbers of
    /// [`ExecError::RankDead`] are in its `Display` form).
    pub fn message(&self) -> &str {
        match self {
            ExecError::JobPanicked { message } => message,
            ExecError::RankDead { .. } => "rank blocked forever on a receive from a dead rank",
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::JobPanicked { message } => {
                write!(f, "executor job panicked: {message}")
            }
            ExecError::RankDead { step, src, dst } => {
                write!(
                    f,
                    "step {step}: rank {dst} blocked forever on a receive from dead rank {src}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Locks a mutex, tolerating poison.
///
/// A gather job that panics (e.g. on a missing block) dies while holding a
/// rank's state lock; sibling jobs must still complete their batch so the
/// *original* panic — not a secondary "poisoned" one — reaches the caller,
/// and the states are discarded after a panicked batch anyway.
fn lock_any<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

enum Command {
    Run(Job),
    Exit,
}

/// Completion tracking for one batch of jobs. Each [`ExecutorPool::run_batch`]
/// call gets its own status, so concurrent runs sharing one pool (e.g. the
/// global pool under a parallel test harness) cannot observe each other's
/// completion or panics.
struct BatchStatus {
    /// (jobs still running or queued, first panic payload of this batch).
    state: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    done: Condvar,
}

/// Shared state between the pool handle and its workers.
struct PoolShared {
    queue: Mutex<VecDeque<Command>>,
    /// Signalled when work is pushed.
    work_ready: Condvar,
}

/// A persistent pool of worker threads executing compiled schedules.
///
/// Create one with [`ExecutorPool::new`] or use the process-wide
/// [`ExecutorPool::global`]. Dropping a pool shuts its workers down.
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ExecutorPool {
    /// Creates a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("bine-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// The process-wide pool, sized to the available parallelism. Created on
    /// first use and kept alive for the life of the process.
    pub fn global() -> &'static ExecutorPool {
        static GLOBAL: OnceLock<ExecutorPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            ExecutorPool::new(cores)
        })
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of jobs to completion, surfacing the first panic as a
    /// typed [`ExecError`] instead of unwinding. The batch always drains
    /// fully — even after a panic every remaining job runs (or has run)
    /// before this returns, so no job still holding state references is in
    /// flight afterwards.
    ///
    /// This is the primary fallible surface the `try_run*` schedule
    /// executors are built on; it is public so callers with their own job
    /// shapes get the same drain-fully panic contract.
    pub fn try_run_batch(&self, jobs: Vec<Job>) -> Result<(), ExecError> {
        self.run_batch_impl(jobs).map_err(ExecError::from_panic)
    }

    /// [`ExecutorPool::try_run_batch`] with the raw panic payload, so the
    /// dense executors can convert once at their own boundary.
    fn run_batch_impl(&self, jobs: Vec<Job>) -> Result<(), PanicPayload> {
        if jobs.is_empty() {
            return Ok(());
        }
        let batch = Arc::new(BatchStatus {
            state: Mutex::new((jobs.len(), None)),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool poisoned");
            for job in jobs {
                let batch = Arc::clone(&batch);
                queue.push_back(Command::Run(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    let mut state = batch.state.lock().expect("batch poisoned");
                    state.0 -= 1;
                    if let Err(panic) = outcome {
                        state.1.get_or_insert(panic);
                    }
                    if state.0 == 0 {
                        batch.done.notify_all();
                    }
                })));
            }
        }
        self.shared.work_ready.notify_all();
        let mut state = batch.state.lock().expect("batch poisoned");
        while state.0 > 0 {
            state = batch.done.wait(state).expect("batch poisoned");
        }
        match state.1.take() {
            Some(panic) => Err(panic),
            None => Ok(()),
        }
    }

    /// The primary symbolic entry point: executes `compiled` starting from
    /// symbolic `initial` stores on this pool and returns symbolic final
    /// stores, with the executor panic contract surfaced as a typed error —
    /// a panicking rank job (e.g. a reduce op applied to mismatched block
    /// lengths) is caught at the worker and returned as [`ExecError`] after
    /// the whole batch has drained. The pool remains fully usable
    /// afterwards.
    ///
    /// The schedule is taken as an `Arc` so repeated runs (and the worker
    /// jobs) share one compiled form without re-copying it.
    pub fn try_run(
        &self,
        compiled: &Arc<CompiledSchedule>,
        initial: Vec<BlockStore>,
    ) -> Result<Vec<BlockStore>, ExecError> {
        self.try_run_with_dead(compiled, initial, &[])
    }

    /// [`ExecutorPool::try_run`] with deterministic dead-rank injection: the
    /// `dead` ranks crash before the collective starts — their sends never
    /// leave, their receives are never posted, their state is returned
    /// untouched. Sends *into* a dead rank complete eagerly at the sender.
    /// A surviving rank whose scheduled receive has no payload (its sender
    /// is dead) would block forever in a real run; the per-step watchdog
    /// detects this at the step barrier and aborts the run with
    /// [`ExecError::RankDead`] naming the earliest blocked receive. An empty
    /// `dead` slice is exactly the healthy path.
    ///
    /// # Panics
    /// Panics if a dead rank is out of range.
    pub fn try_run_with_dead(
        &self,
        compiled: &Arc<CompiledSchedule>,
        initial: Vec<BlockStore>,
        dead: &[usize],
    ) -> Result<Vec<BlockStore>, ExecError> {
        let dense = compiled::to_dense(compiled, initial);
        let finals = self.try_run_dense_with_dead(compiled, dense, dead)?;
        Ok(compiled::from_dense(compiled, finals))
    }

    /// Thin panicking wrapper over [`ExecutorPool::try_run`] for callers
    /// that treat a failed rank job as a bug.
    ///
    /// # Panics
    /// On the first failed rank job, with the [`ExecError`] display message
    /// (the pool itself stays usable).
    pub fn run(
        &self,
        compiled: &Arc<CompiledSchedule>,
        initial: Vec<BlockStore>,
    ) -> Vec<BlockStore> {
        self.try_run(compiled, initial)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The primary dense entry point: executes `compiled` over dense states
    /// on this pool, with panics surfaced as [`ExecError`].
    pub fn try_run_dense(
        &self,
        compiled: &Arc<CompiledSchedule>,
        states: Vec<DenseState>,
    ) -> Result<Vec<DenseState>, ExecError> {
        self.run_dense_impl(compiled, states, &[])
    }

    /// [`ExecutorPool::try_run_dense`] with deterministic dead-rank
    /// injection (see [`ExecutorPool::try_run_with_dead`] for the fault
    /// semantics).
    ///
    /// # Panics
    /// Panics if a dead rank is out of range.
    pub fn try_run_dense_with_dead(
        &self,
        compiled: &Arc<CompiledSchedule>,
        states: Vec<DenseState>,
        dead: &[usize],
    ) -> Result<Vec<DenseState>, ExecError> {
        self.run_dense_impl(compiled, states, dead)
    }

    /// Thin panicking wrapper over [`ExecutorPool::try_run_dense`].
    ///
    /// # Panics
    /// On the first failed rank job, with the [`ExecError`] display message
    /// (the pool itself stays usable).
    pub fn run_dense(
        &self,
        compiled: &Arc<CompiledSchedule>,
        states: Vec<DenseState>,
    ) -> Vec<DenseState> {
        self.try_run_dense(compiled, states)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn run_dense_impl(
        &self,
        compiled: &Arc<CompiledSchedule>,
        states: Vec<DenseState>,
        dead: &[usize],
    ) -> Result<Vec<DenseState>, ExecError> {
        let p = compiled.num_ranks;
        assert_eq!(states.len(), p, "one dense state per rank required");
        if p == 0 {
            return Ok(states);
        }
        let inject = !dead.is_empty();
        let mut is_dead = vec![false; p];
        for &d in dead {
            assert!(d < p, "dead rank {d} out of range for {p} ranks");
            is_dead[d] = true;
        }
        // Shared read-only across the step jobs; before the first stall the
        // only unsatisfiable receives are those from initially-dead ranks,
        // and the run aborts at the step that detects one, so the set never
        // grows.
        let is_dead = Arc::new(is_dead);
        let states: Arc<Vec<Mutex<DenseState>>> =
            Arc::new(states.into_iter().map(Mutex::new).collect());

        for step in 0..compiled.num_steps() {
            let send_range = compiled.step_send_range(step);
            let num_sends = send_range.len();
            if num_sends == 0 {
                continue;
            }
            let payload_base = compiled
                .step_sends(step)
                .iter()
                .map(|s| s.blocks_start)
                .min()
                .expect("non-empty step") as usize;
            let payload_count = compiled.step_payload_count(step);

            // Gather phase: workers read payloads into per-chunk staging.
            let workers = self.num_workers().min(num_sends);
            let chunk = num_sends.div_ceil(workers);
            type PartialStaging = Arc<Vec<Mutex<Vec<(usize, Block)>>>>;
            let partial: PartialStaging =
                Arc::new((0..workers).map(|_| Mutex::new(Vec::new())).collect());
            let mut jobs: Vec<Job> = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = send_range.start + w * chunk;
                let hi = (lo + chunk).min(send_range.end);
                let compiled = Arc::clone(compiled);
                let states = Arc::clone(&states);
                let partial = Arc::clone(&partial);
                let is_dead = Arc::clone(&is_dead);
                jobs.push(Box::new(move || {
                    let mut out = Vec::new();
                    for send_idx in lo..hi {
                        let send = compiled.send(send_idx);
                        if inject && is_dead[send.src as usize] {
                            // A dead rank's sends never leave: the staging
                            // slot stays empty and the receive is caught by
                            // the apply-phase watchdog.
                            continue;
                        }
                        let src = lock_any(&states[send.src as usize]);
                        for (k, &block_idx) in compiled.block_index_slice(send).iter().enumerate() {
                            let payload = src.slot(block_idx).unwrap_or_else(|| {
                                panic!(
                                    "step {step}: rank {} sends block {:?} it does not hold ({})",
                                    send.src,
                                    compiled.blocks().resolve(block_idx),
                                    compiled.algorithm
                                )
                            });
                            out.push((
                                send.blocks_start as usize - payload_base + k,
                                Block::clone(payload),
                            ));
                        }
                    }
                    *lock_any(&partial[w]) = out;
                }));
            }
            self.run_batch_impl(jobs).map_err(ExecError::from_panic)?;

            // Assemble the staging buffer (moves Arcs, no payload copies).
            let mut staging: Vec<Option<Block>> = vec![None; payload_count];
            for chunk in partial.iter() {
                for (slot, payload) in lock_any(chunk).drain(..) {
                    staging[slot] = Some(payload);
                }
            }
            let staging = Arc::new(staging);

            // Apply phase: workers own disjoint destination-rank chunks.
            // Under injection each worker reports the receives it found
            // unsatisfiable (sender dead, nothing staged) — the watchdog.
            let workers = self.num_workers().min(p);
            let chunk = p.div_ceil(workers);
            let stalled: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
            let mut jobs: Vec<Job> = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = w * chunk;
                let hi = (lo + chunk).min(p);
                let compiled = Arc::clone(compiled);
                let states = Arc::clone(&states);
                let staging = Arc::clone(&staging);
                let is_dead = Arc::clone(&is_dead);
                let stalled = Arc::clone(&stalled);
                jobs.push(Box::new(move || {
                    for rank in lo..hi {
                        if inject && is_dead[rank] {
                            // A dead rank posts no receives; its state stays
                            // untouched.
                            continue;
                        }
                        let recvs = compiled.recvs_to(step, rank);
                        if recvs.is_empty() {
                            continue;
                        }
                        let mut dst = lock_any(&states[rank]);
                        for &send_idx in recvs {
                            let send = compiled.send(send_idx as usize);
                            if inject && is_dead[send.src as usize] {
                                // Blocking receive from a dead rank: in a
                                // real run this rank hangs here, and its
                                // later receives are never posted.
                                lock_any(&stalled).push(send_idx);
                                break;
                            }
                            for (k, &block_idx) in
                                compiled.block_index_slice(send).iter().enumerate()
                            {
                                let payload = staging
                                    [send.blocks_start as usize - payload_base + k]
                                    .as_ref()
                                    .expect("staged payload missing");
                                compiled::apply(&mut dst, block_idx, payload, send.kind);
                            }
                        }
                    }
                }));
            }
            self.run_batch_impl(jobs).map_err(ExecError::from_panic)?;
            if inject {
                let stalled = lock_any(&stalled);
                if let Some(&send_idx) = stalled.iter().min() {
                    let send = compiled.send(send_idx as usize);
                    return Err(ExecError::RankDead {
                        step,
                        src: send.src as usize,
                        dst: send.dst as usize,
                    });
                }
            }
        }

        // Batches drain fully even on a panic, so no in-flight job can still
        // hold a reference here — on success *or* on the early-error paths
        // above, where `states` is simply dropped.
        let states = Arc::try_unwrap(states).expect("worker kept a state reference");
        Ok(states
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect())
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool poisoned");
            for _ in 0..self.workers.len() {
                queue.push_back(Command::Exit);
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let command = {
            let mut queue = shared.queue.lock().expect("pool poisoned");
            loop {
                match queue.pop_front() {
                    Some(c) => break c,
                    None => queue = shared.work_ready.wait(queue).expect("pool poisoned"),
                }
            }
        };
        match command {
            // Batch wrappers catch panics themselves, so `job()` never
            // unwinds into the worker loop.
            Command::Run(job) => job(),
            Command::Exit => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use crate::state::Workload;
    use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};

    #[test]
    fn pool_reuses_a_fixed_worker_set_across_runs() {
        let pool = ExecutorPool::new(3);
        assert_eq!(pool.num_workers(), 3);
        let sched = allreduce(16, AllreduceAlg::BineLarge);
        let compiled = Arc::new(sched.compile());
        let w = Workload::for_schedule(&sched, 2);
        let reference = sequential::run_reference(&sched, w.initial_state(&sched));
        for _ in 0..5 {
            let finals = pool.run(&compiled, w.initial_state(&sched));
            assert_eq!(finals, reference);
        }
        assert_eq!(pool.num_workers(), 3, "workers must persist across runs");
    }

    #[test]
    fn worker_count_is_independent_of_rank_count() {
        // A 1024-rank schedule on 2 workers: the pool multiplexes, it never
        // spawns per-rank threads.
        let pool = ExecutorPool::new(2);
        let sched = allreduce(1024, AllreduceAlg::BineSmall);
        let compiled = Arc::new(sched.compile());
        let w = Workload::for_schedule(&sched, 1);
        let finals = pool.run(&compiled, w.initial_state(&sched));
        assert_eq!(finals.len(), 1024);
        assert!(crate::verify::verify(&w, &finals).is_ok());
    }

    #[test]
    fn panics_inside_jobs_propagate_and_leave_the_pool_usable() {
        let pool = ExecutorPool::new(2);
        let sched = broadcast(8, 0, BroadcastAlg::BineTree);
        let compiled = Arc::new(sched.compile());
        let empty: Vec<BlockStore> = (0..8).map(|_| BlockStore::new()).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(&compiled, empty)));
        let message = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(message.contains("does not hold"), "{message}");
        // The pool survives and still executes correctly.
        let w = Workload::for_schedule(&sched, 2);
        let finals = pool.run(&compiled, w.initial_state(&sched));
        assert!(crate::verify::verify(&w, &finals).is_ok());
    }

    /// An initial state whose rank-3 payloads are one element too long: any
    /// reduce combining them with a healthy block trips `compiled::apply`'s
    /// length assertion *inside a worker* — the injected panicking reduce op.
    fn corrupted_initial(w: &Workload, sched: &bine_sched::Schedule) -> Vec<BlockStore> {
        let mut initial = w.initial_state(sched);
        let store = &mut initial[3];
        let ids: Vec<_> = store.iter().map(|(id, _)| *id).collect();
        for id in ids {
            let mut long = store.get(&id).expect("just listed").clone();
            long.push(0.0);
            store.insert(id, long);
        }
        initial
    }

    #[test]
    fn try_run_surfaces_worker_panics_as_typed_errors() {
        let pool = ExecutorPool::new(2);
        let sched = allreduce(8, AllreduceAlg::RecursiveDoubling);
        let compiled = Arc::new(sched.compile());
        let w = Workload::for_schedule(&sched, 2);

        // Injected panicking reduce op: mismatched block lengths.
        let err = pool
            .try_run(&compiled, corrupted_initial(&w, &sched))
            .expect_err("mismatched lengths must fail");
        assert!(
            err.message().contains("block length mismatch"),
            "unexpected error: {err}"
        );
        assert!(err.to_string().starts_with("executor job panicked:"));

        // Missing blocks (gather-phase panic) are typed too.
        let empty: Vec<BlockStore> = (0..8).map(|_| BlockStore::new()).collect();
        let err = pool
            .try_run(&compiled, empty)
            .expect_err("missing blocks must fail");
        assert!(err.message().contains("does not hold"), "{err}");

        // The pool is fully usable afterwards and still bit-identical to the
        // sequential reference.
        let reference = sequential::run_reference(&sched, w.initial_state(&sched));
        let finals = pool
            .try_run(&compiled, w.initial_state(&sched))
            .expect("healthy run");
        assert_eq!(finals, reference);
    }

    #[test]
    fn stress_racing_panicking_reduce_ops_against_healthy_runs() {
        // 8 caller threads share one 4-worker pool for several rounds; half
        // inject the panicking reduce op, half run healthy workloads. Every
        // injected run must fail typed, every healthy run must stay
        // bit-identical to the sequential reference, and the pool must end
        // the stress fully usable — no poisoned locks, no leaked jobs.
        let pool = Arc::new(ExecutorPool::new(4));
        let sched = Arc::new(allreduce(16, AllreduceAlg::BineSmall));
        let compiled = Arc::new(sched.compile());
        let w = Arc::new(Workload::for_schedule(&sched, 2));
        let reference = Arc::new(sequential::run_reference(&sched, w.initial_state(&sched)));

        let handles: Vec<_> = (0..8)
            .map(|caller| {
                let pool = Arc::clone(&pool);
                let sched = Arc::clone(&sched);
                let compiled = Arc::clone(&compiled);
                let w = Arc::clone(&w);
                let reference = Arc::clone(&reference);
                thread::spawn(move || {
                    for _round in 0..6 {
                        if caller % 2 == 0 {
                            let finals = pool
                                .try_run(&compiled, w.initial_state(&sched))
                                .expect("healthy run must succeed");
                            assert_eq!(finals, *reference);
                        } else {
                            let err = pool
                                .try_run(&compiled, corrupted_initial(&w, &sched))
                                .expect_err("corrupted run must fail");
                            assert!(
                                err.message().contains("block length mismatch"),
                                "unexpected error: {err}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread must not die");
        }

        // Still healthy after the stress.
        let finals = pool.run(&compiled, w.initial_state(&sched));
        assert_eq!(finals, *reference);
        assert_eq!(pool.num_workers(), 4);
    }

    #[test]
    fn dead_rank_injection_stalls_dependents_with_a_typed_error() {
        // Recursive-doubling allreduce: every rank exchanges with a partner
        // each step, so killing rank 3 blocks its step-0 partner forever.
        // The watchdog must surface that as RankDead, not hang or panic.
        let pool = ExecutorPool::new(2);
        let sched = allreduce(8, AllreduceAlg::RecursiveDoubling);
        let compiled = Arc::new(sched.compile());
        let w = Workload::for_schedule(&sched, 2);
        let err = pool
            .try_run_with_dead(&compiled, w.initial_state(&sched), &[3])
            .expect_err("a dead partner must stall the exchange");
        match err {
            ExecError::RankDead { step, src, dst } => {
                assert_eq!(step, 0, "the stall is detected at the first exchange");
                assert_eq!(src, 3, "the diagnosed sender is the dead rank");
                assert_ne!(dst, 3, "the blocked rank survived");
            }
            other => panic!("expected RankDead, got {other}"),
        }
        assert_eq!(
            err.message(),
            "rank blocked forever on a receive from a dead rank"
        );
        assert!(err.to_string().contains("dead rank 3"), "{err}");

        // The pool is fully usable afterwards and still bit-identical.
        let reference = sequential::run_reference(&sched, w.initial_state(&sched));
        let finals = pool
            .try_run_with_dead(&compiled, w.initial_state(&sched), &[])
            .expect("empty dead set is the healthy path");
        assert_eq!(finals, reference);
    }

    #[test]
    fn a_dead_leaf_does_not_stall_the_surviving_ranks() {
        // A broadcast leaf forwards nothing: killing it leaves every other
        // rank's data flow intact, so the run completes and the survivors'
        // results are bit-identical to the healthy reference.
        let pool = ExecutorPool::new(2);
        let sched = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
        let leaf = (0..8)
            .find(|r| sched.messages().all(|(_, m)| m.src != *r))
            .expect("a binomial tree has leaves");
        let compiled = Arc::new(sched.compile());
        let w = Workload::for_schedule(&sched, 2);
        let reference = sequential::run_reference(&sched, w.initial_state(&sched));
        let finals = pool
            .try_run_with_dead(&compiled, w.initial_state(&sched), &[leaf])
            .expect("a dead leaf stalls nobody");
        for (rank, (got, want)) in finals.iter().zip(&reference).enumerate() {
            if rank != leaf {
                assert_eq!(got, want, "rank {rank} diverged");
            }
        }
    }

    #[test]
    fn global_pool_is_shared_and_bounded() {
        let a = ExecutorPool::global();
        let b = ExecutorPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.num_workers() >= 1);
    }
}
