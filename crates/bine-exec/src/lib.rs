//! # bine-exec
//!
//! Executors that run the communication schedules of `bine-sched` over real
//! floating-point data, standing in for the MPI processes of the paper's
//! evaluation:
//!
//! * [`sequential`] — a deterministic, single-threaded reference interpreter,
//! * [`threaded`] — one OS thread per simulated rank, exchanging payloads
//!   over `crossbeam` channels with bulk-synchronous steps,
//! * [`verify`] — golden-result checks of the MPI post-condition of every
//!   collective,
//! * [`comm`] — the [`comm::Cluster`] facade: an MPI-like API over plain
//!   `Vec<f64>` buffers.
//!
//! ## Quick example
//!
//! ```
//! use bine_exec::comm::Cluster;
//! use bine_sched::collectives::AllreduceAlg;
//!
//! let cluster = Cluster::new(8);
//! let inputs: Vec<Vec<f64>> = (0..8).map(|r| vec![r as f64; 16]).collect();
//! let result = cluster.allreduce(&inputs, AllreduceAlg::BineLarge);
//! assert_eq!(result[0], vec![28.0; 16]); // 0 + 1 + ... + 7
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comm;
pub mod sequential;
pub mod state;
pub mod threaded;
pub mod verify;

pub use comm::Cluster;
pub use state::{BlockStore, Workload};
pub use verify::{run_and_verify, verify, VerifyResult};
