//! # bine-exec
//!
//! Executors that run the communication schedules of `bine-sched` over real
//! floating-point data, standing in for the MPI processes of the paper's
//! evaluation. Payloads are shared [`state::Block`]s (`Arc<Vec<f64>>`):
//! transfers and snapshots are refcount bumps, reductions are copy-on-write.
//!
//! * [`sequential`] — single-threaded interpreters: the zero-copy
//!   [`sequential::run`] and the seed reference
//!   [`sequential::run_reference`] every executor is cross-checked
//!   bit-identical against,
//! * [`compiled`] — the fast single-threaded path: executes a
//!   [`bine_sched::CompiledSchedule`] over dense per-rank state (interned
//!   block indices, no hashing in the inner loop),
//! * [`pool`] — the persistent [`pool::ExecutorPool`]: ranks multiplexed
//!   over one worker per core with per-step work queues,
//! * [`threaded`] — [`threaded::run`] executes compiled schedules on the
//!   global pool; the seed one-thread-per-rank executor is preserved as
//!   [`threaded::run_thread_per_rank`],
//! * [`mod@verify`] — golden-result checks of the MPI post-condition of every
//!   collective,
//! * [`comm`] — the [`comm::Cluster`] facade: an MPI-like API over plain
//!   `Vec<f64>` buffers, running on the pool with cached compiled schedules.
//!
//! ## Quick example
//!
//! ```
//! use bine_exec::comm::Cluster;
//! use bine_sched::collectives::AllreduceAlg;
//!
//! let cluster = Cluster::new(8);
//! let inputs: Vec<Vec<f64>> = (0..8).map(|r| vec![r as f64; 16]).collect();
//! let result = cluster.allreduce(&inputs, AllreduceAlg::BineLarge);
//! assert_eq!(result[0], vec![28.0; 16]); // 0 + 1 + ... + 7
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comm;
pub mod compiled;
pub mod pool;
pub mod sequential;
pub mod state;
pub mod threaded;
pub mod verify;

pub use comm::Cluster;
pub use compiled::DenseState;
pub use pool::{ExecError, ExecutorPool, Job};
pub use state::{Block, BlockStore, Workload};
pub use verify::{run_and_verify, verify, VerifyResult};
