//! Golden-result verification for every collective.
//!
//! Given a [`Workload`] and the final per-rank [`BlockStore`]s produced by an
//! executor, these checks assert the MPI-level post-condition of the
//! collective (e.g. "after an allreduce every rank holds the elementwise sum
//! of all contributions"). Numeric comparison catches both missing and
//! duplicated contributions, which is how schedule-generator bugs would show
//! up.

use bine_sched::{BlockId, Collective};

use crate::state::{BlockStore, Workload};

/// Maximum tolerated absolute error. Inputs are small integers plus simple
/// fractions, so reductions are exact in f64; any deviation is a real bug.
const TOLERANCE: f64 = 1e-9;

/// Outcome of a verification.
pub type VerifyResult = Result<(), String>;

fn expect_block(
    store: &BlockStore,
    rank: usize,
    id: BlockId,
    expected: &[f64],
    what: &str,
) -> VerifyResult {
    let got = store
        .get(&id)
        .ok_or_else(|| format!("rank {rank}: missing {what} block {id:?}"))?;
    if got.len() != expected.len() {
        return Err(format!(
            "rank {rank}: {what} block {id:?} has length {} instead of {}",
            got.len(),
            expected.len()
        ));
    }
    for (j, (a, b)) in got.iter().zip(expected).enumerate() {
        if (a - b).abs() > TOLERANCE {
            return Err(format!(
                "rank {rank}: {what} block {id:?} element {j} is {a}, expected {b}"
            ));
        }
    }
    Ok(())
}

/// Whether the rank is expected to expose its result as one `Full` block or
/// as `p` `Segment` blocks; decided by what it actually holds so both
/// small-vector and large-vector algorithm families verify naturally.
fn holds_full(store: &BlockStore) -> bool {
    store.get(&BlockId::Full).is_some()
}

/// Verifies the final states of `collective` for `workload`.
pub fn verify(workload: &Workload, finals: &[BlockStore]) -> VerifyResult {
    let p = workload.num_ranks;
    if finals.len() != p {
        return Err(format!("expected {p} rank states, got {}", finals.len()));
    }
    match workload.collective {
        Collective::Broadcast => {
            let root_vec = workload.full_vector(workload.root);
            for (r, store) in finals.iter().enumerate() {
                if holds_full(store) {
                    expect_block(store, r, BlockId::Full, &root_vec, "broadcast")?;
                } else {
                    for i in 0..p {
                        let seg = workload.segment(workload.root, i);
                        expect_block(store, r, BlockId::Segment(i as u32), &seg, "broadcast")?;
                    }
                }
            }
            Ok(())
        }
        Collective::Reduce => {
            let store = &finals[workload.root];
            if holds_full(store) && store.get(&BlockId::Segment(0)).is_none() {
                let expected: Vec<f64> = (0..workload.vector_len())
                    .map(|j| workload.reduced(j))
                    .collect();
                expect_block(store, workload.root, BlockId::Full, &expected, "reduce")
            } else {
                for i in 0..p {
                    let expected = workload.reduced_segment(i);
                    expect_block(
                        store,
                        workload.root,
                        BlockId::Segment(i as u32),
                        &expected,
                        "reduce",
                    )?;
                }
                Ok(())
            }
        }
        Collective::Allreduce => {
            for (r, store) in finals.iter().enumerate() {
                if holds_full(store) && store.get(&BlockId::Segment(0)).is_none() {
                    let expected: Vec<f64> = (0..workload.vector_len())
                        .map(|j| workload.reduced(j))
                        .collect();
                    expect_block(store, r, BlockId::Full, &expected, "allreduce")?;
                } else {
                    for i in 0..p {
                        let expected = workload.reduced_segment(i);
                        expect_block(store, r, BlockId::Segment(i as u32), &expected, "allreduce")?;
                    }
                }
            }
            Ok(())
        }
        Collective::ReduceScatter => {
            for (r, store) in finals.iter().enumerate() {
                let expected = workload.reduced_segment(r);
                expect_block(
                    store,
                    r,
                    BlockId::Segment(r as u32),
                    &expected,
                    "reduce-scatter",
                )?;
            }
            Ok(())
        }
        Collective::Gather => {
            let store = &finals[workload.root];
            for i in 0..p {
                let expected = workload.segment(i, i);
                expect_block(
                    store,
                    workload.root,
                    BlockId::Segment(i as u32),
                    &expected,
                    "gather",
                )?;
            }
            Ok(())
        }
        Collective::Allgather => {
            for (r, store) in finals.iter().enumerate() {
                for i in 0..p {
                    let expected = workload.segment(i, i);
                    expect_block(store, r, BlockId::Segment(i as u32), &expected, "allgather")?;
                }
            }
            Ok(())
        }
        Collective::Scatter => {
            for (r, store) in finals.iter().enumerate() {
                let expected = workload.segment(workload.root, r);
                expect_block(store, r, BlockId::Segment(r as u32), &expected, "scatter")?;
            }
            Ok(())
        }
        Collective::Alltoall => {
            for (r, store) in finals.iter().enumerate() {
                for o in 0..p {
                    let expected: Vec<f64> = (0..workload.elems_per_block)
                        .map(|j| workload.pairwise_value(o, r, j))
                        .collect();
                    expect_block(
                        store,
                        r,
                        BlockId::Pairwise {
                            origin: o as u32,
                            dest: r as u32,
                        },
                        &expected,
                        "alltoall",
                    )?;
                }
            }
            Ok(())
        }
    }
}

/// Convenience helper: builds the workload for a schedule, runs it on the
/// sequential executor and verifies the result.
pub fn run_and_verify(schedule: &bine_sched::Schedule, elems_per_block: usize) -> VerifyResult {
    let workload = Workload::for_schedule(schedule, elems_per_block);
    let finals = crate::sequential::run(schedule, workload.initial_state(schedule));
    verify(&workload, &finals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bine_sched::collectives::{allreduce, AllreduceAlg};

    #[test]
    fn verification_passes_for_a_correct_schedule() {
        let sched = allreduce(8, AllreduceAlg::BineSmall);
        assert!(run_and_verify(&sched, 2).is_ok());
    }

    #[test]
    fn verification_detects_corrupted_results() {
        let sched = allreduce(8, AllreduceAlg::BineSmall);
        let w = Workload::for_schedule(&sched, 2);
        let mut finals = crate::sequential::run(&sched, w.initial_state(&sched));
        // Corrupt one element on one rank.
        let mut v = finals[3].get(&BlockId::Full).unwrap().clone();
        v[0] += 1.0;
        finals[3].insert(BlockId::Full, v);
        let err = verify(&w, &finals).unwrap_err();
        assert!(err.contains("rank 3"), "{err}");
    }

    #[test]
    fn irregular_schedules_execute_and_verify_end_to_end() {
        use bine_sched::collectives::{gatherv, reduce_scatterv, IrregularAlg, SizeDist};
        let p = 8;
        for dist in SizeDist::ALL {
            let sched = gatherv(p, 0, dist.counts(p, 0), IrregularAlg::Traff);
            assert!(run_and_verify(&sched, 3).is_ok(), "gatherv {}", dist.name());
        }
        // A zero-total segment on some ranks through the reduce path.
        let sched = reduce_scatterv(p, SizeDist::Linear.counts(p, 0), IrregularAlg::Ring);
        assert!(run_and_verify(&sched, 2).is_ok());
    }

    #[test]
    fn verification_detects_missing_blocks() {
        let sched = allreduce(8, AllreduceAlg::BineLarge);
        let w = Workload::for_schedule(&sched, 2);
        let mut finals = crate::sequential::run(&sched, w.initial_state(&sched));
        finals[0] = BlockStore::new();
        assert!(verify(&w, &finals).is_err());
    }
}
