//! Multi-threaded schedule execution.
//!
//! [`run`] is the production path: it compiles the schedule once and
//! executes it on the process-wide persistent [`crate::pool::ExecutorPool`],
//! multiplexing any number of simulated ranks over one worker per core —
//! a 1024-rank schedule runs on 8 cores with 8 threads, not 1024.
//!
//! [`run_thread_per_rank`] is the seed executor — one OS thread per
//! simulated rank, exchanging deep-copied payloads over `crossbeam`
//! channels with a barrier between steps. It is kept as the closest
//! in-process analogue of per-rank MPI processes and as a cross-check /
//! benchmark baseline for the pool executor; both are bit-identical to the
//! sequential reference interpreter.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

use bine_sched::{BlockId, CompiledSchedule, Schedule, TransferKind};

use crate::pool::ExecutorPool;
use crate::state::BlockStore;

/// Executes `schedule` starting from `initial` per-rank states on the
/// process-wide persistent worker pool, and returns the final per-rank
/// states.
///
/// The result is bit-identical to [`crate::sequential::run_reference`]:
/// payloads are gathered against the pre-step state and every receiver
/// applies its payloads in schedule order, so thread scheduling cannot
/// reorder floating-point reductions.
pub fn run(schedule: &Schedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    let compiled = Arc::new(schedule.compile());
    run_compiled(&compiled, initial)
}

/// Executes an already-compiled schedule on the process-wide pool. Callers
/// that execute the same schedule repeatedly should compile once and call
/// this (the `Arc` is shared with the workers, never copied).
pub fn run_compiled(compiled: &Arc<CompiledSchedule>, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    ExecutorPool::global().run(compiled, initial)
}

type Payload = (BlockId, Vec<f64>, TransferKind);

/// Executes `schedule` with one OS thread per simulated rank (the seed
/// executor, preserved for cross-checking and benchmarking).
///
/// Each rank runs in its own thread, holds its own [`BlockStore`], and
/// exchanges deep-copied block payloads over `crossbeam` channels; steps are
/// separated by a barrier. Spawns `schedule.num_ranks` threads *per call* —
/// use [`run`] for anything performance-sensitive.
pub fn run_thread_per_rank(schedule: &Schedule, initial: Vec<BlockStore>) -> Vec<BlockStore> {
    let p = schedule.num_ranks;
    assert_eq!(
        initial.len(),
        p,
        "initial state must have one store per rank"
    );
    if p == 0 {
        return initial;
    }

    let schedule = Arc::new(schedule.clone());
    let barrier = Arc::new(Barrier::new(p));

    // One multi-producer single-consumer channel per receiving rank.
    let mut senders: Vec<Sender<(usize, Payload)>> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<(usize, Payload)>>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let senders = Arc::new(senders);

    let mut handles = Vec::with_capacity(p);
    for (rank, (store, rx)) in initial.into_iter().zip(receivers.iter_mut()).enumerate() {
        let rx = rx.take().expect("receiver taken twice");
        let schedule = Arc::clone(&schedule);
        let barrier = Arc::clone(&barrier);
        let senders = Arc::clone(&senders);
        let mut store = store;
        handles.push(std::thread::spawn(move || {
            for step in &schedule.steps {
                // Count how many messages target this rank in this step so
                // the receive loop knows when to stop.
                let mut expected = 0usize;
                for m in &step.messages {
                    if m.dst == rank && m.src != rank {
                        expected += m.blocks.len();
                    }
                }
                // Send phase: read only the local pre-step state.
                for m in &step.messages {
                    if m.src != rank {
                        continue;
                    }
                    if m.dst == rank {
                        // Local buffer reorganisation: nothing to move at the
                        // data level (the blocks already live here).
                        continue;
                    }
                    for block in &m.blocks {
                        let value = store
                            .get(block)
                            .unwrap_or_else(|| {
                                panic!(
                                    "rank {rank} sends block {block:?} it does not hold ({})",
                                    schedule.algorithm
                                )
                            })
                            .clone();
                        senders[m.dst]
                            .send((rank, (*block, value, m.kind)))
                            .expect("receiver thread hung up");
                    }
                }
                // Receive phase: apply exactly the expected payloads. To keep
                // the result identical to the sequential interpreter, apply
                // them ordered by sending rank.
                let mut incoming: Vec<(usize, Payload)> = Vec::with_capacity(expected);
                for _ in 0..expected {
                    incoming.push(rx.recv().expect("sender thread hung up"));
                }
                incoming.sort_by_key(|(src, _)| *src);
                for (_, (block, value, kind)) in incoming {
                    match kind {
                        TransferKind::Copy => store.insert(block, value),
                        TransferKind::Reduce => store.reduce(block, &value),
                    }
                }
                // Step barrier: nobody starts the next step early.
                barrier.wait();
            }
            (rank, store)
        }));
    }

    let mut result: Vec<Option<BlockStore>> = (0..p).map(|_| None).collect();
    for h in handles {
        let (rank, store) = h.join().expect("executor thread panicked");
        result[rank] = Some(store);
    }
    result
        .into_iter()
        .map(|s| s.expect("missing rank state"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;
    use crate::state::Workload;
    use bine_sched::collectives::{allreduce, alltoall, AllreduceAlg, AlltoallAlg};

    #[test]
    fn pool_executor_matches_sequential_for_allreduce() {
        for alg in [
            AllreduceAlg::BineSmall,
            AllreduceAlg::BineLarge,
            AllreduceAlg::Ring,
        ] {
            let sched = allreduce(16, alg);
            let w = Workload::for_schedule(&sched, 3);
            let seq = sequential::run(&sched, w.initial_state(&sched));
            let thr = run(&sched, w.initial_state(&sched));
            assert_eq!(seq, thr, "{}", sched.algorithm);
        }
    }

    #[test]
    fn pool_executor_matches_sequential_for_alltoall() {
        let sched = alltoall(8, AlltoallAlg::Bine);
        let w = Workload::for_schedule(&sched, 2);
        let seq = sequential::run(&sched, w.initial_state(&sched));
        let thr = run(&sched, w.initial_state(&sched));
        assert_eq!(seq, thr);
    }

    #[test]
    fn thread_per_rank_matches_the_pool_executor() {
        for alg in [AllreduceAlg::BineLarge, AllreduceAlg::Ring] {
            let sched = allreduce(16, alg);
            let w = Workload::for_schedule(&sched, 3);
            let legacy = run_thread_per_rank(&sched, w.initial_state(&sched));
            let pooled = run(&sched, w.initial_state(&sched));
            assert_eq!(legacy, pooled, "{}", sched.algorithm);
        }
    }
}
