//! Per-rank data state and deterministic workloads.
//!
//! The executors in this crate interpret a [`bine_sched::Schedule`] over real
//! floating-point data: every rank owns a [`BlockStore`] mapping block
//! identifiers to value vectors, messages move (or reduce) those vectors, and
//! the final states are checked against analytically computed expectations.
//! This is the substitute for running the collectives on a real MPI cluster:
//! the data semantics of every algorithm are exercised end to end.

use std::collections::HashMap;
use std::sync::Arc;

use bine_sched::{BlockId, Collective, Counts, Schedule};

/// A shared, immutable-until-owned block payload.
///
/// Payloads are reference counted so that transfers and per-step snapshots
/// are refcount bumps rather than deep copies; reductions mutate through
/// [`Arc::make_mut`], copying only when the payload is actually shared
/// (copy-on-write).
pub type Block = Arc<Vec<f64>>;

/// The data a single rank holds: a map from block identifiers to shared
/// value vectors.
///
/// Cloning a `BlockStore` clones the map but *shares* every payload, so a
/// clone is O(blocks), not O(elements). All mutation goes through
/// [`BlockStore::insert`] (replace) or [`BlockStore::reduce`]
/// (copy-on-write), which keeps shared payloads safe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStore {
    blocks: HashMap<BlockId, Block>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the value of a block, if held.
    pub fn get(&self, id: &BlockId) -> Option<&Vec<f64>> {
        self.blocks.get(id).map(|b| b.as_ref())
    }

    /// Returns the shared payload of a block, if held (a clone of the result
    /// is a refcount bump, not a copy).
    pub fn get_shared(&self, id: &BlockId) -> Option<&Block> {
        self.blocks.get(id)
    }

    /// Stores (or overwrites) a block.
    pub fn insert(&mut self, id: BlockId, value: impl Into<Block>) {
        self.blocks.insert(id, value.into());
    }

    /// Reduces `value` elementwise into the stored block, inserting it if the
    /// block is not present yet. Copy-on-write: a payload shared with other
    /// ranks (or a snapshot) is copied once, an exclusively owned payload is
    /// mutated in place.
    pub fn reduce(&mut self, id: BlockId, value: &[f64]) {
        match self.blocks.get_mut(&id) {
            Some(existing) => {
                assert_eq!(
                    existing.len(),
                    value.len(),
                    "block length mismatch for {id:?}"
                );
                for (a, b) in Arc::make_mut(existing).iter_mut().zip(value) {
                    *a += b;
                }
            }
            None => {
                self.blocks.insert(id, Arc::new(value.to_vec()));
            }
        }
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over the held blocks.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &Vec<f64>)> {
        self.blocks.iter().map(|(id, b)| (id, b.as_ref()))
    }

    /// Consumes the store, yielding every `(id, shared payload)` pair
    /// without copying or refcount churn.
    pub fn into_blocks(self) -> impl Iterator<Item = (BlockId, Block)> {
        self.blocks.into_iter()
    }

    /// A clone that deep-copies every payload (no sharing with `self`).
    ///
    /// Only the preserved reference interpreter uses this — it reproduces
    /// the seed executor's O(ranks × elements) per-step snapshot cost, which
    /// the benchmarks compare the zero-copy executors against.
    pub fn deep_clone(&self) -> Self {
        Self {
            blocks: self
                .blocks
                .iter()
                .map(|(id, b)| (*id, Arc::new(b.as_ref().clone())))
                .collect(),
        }
    }
}

/// A deterministic workload for one collective invocation: defines every
/// rank's input data and the expected outputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of ranks.
    pub num_ranks: usize,
    /// Elements per block (`Segment`/`Pairwise` blocks have this many
    /// elements; `Full` blocks have `num_ranks` times as many).
    pub elems_per_block: usize,
    /// The collective being executed.
    pub collective: Collective,
    /// The root rank for rooted collectives.
    pub root: usize,
    /// Per-rank counts for irregular (v-variant) schedules: segment `i`
    /// holds `counts[i] * elems_per_block` elements, so zero-count segments
    /// are genuinely empty vectors. `None` for regular workloads, where
    /// every segment holds `elems_per_block` elements.
    pub counts: Option<Counts>,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(
        num_ranks: usize,
        elems_per_block: usize,
        collective: Collective,
        root: usize,
    ) -> Self {
        assert!(elems_per_block >= 1);
        Self {
            num_ranks,
            elems_per_block,
            collective,
            root,
            counts: None,
        }
    }

    /// Creates the workload matching a schedule, inheriting the schedule's
    /// irregular counts when present.
    pub fn for_schedule(schedule: &Schedule, elems_per_block: usize) -> Self {
        let mut w = Self::new(
            schedule.num_ranks,
            elems_per_block,
            schedule.collective,
            schedule.root,
        );
        w.counts = schedule.counts.clone();
        w
    }

    /// Attaches irregular per-rank counts.
    ///
    /// # Panics
    /// Panics if the counts do not cover exactly `num_ranks` ranks.
    pub fn with_counts(mut self, counts: Counts) -> Self {
        assert_eq!(counts.num_ranks(), self.num_ranks);
        self.counts = Some(counts);
        self
    }

    /// Elements of segment `i`.
    pub fn seg_elems(&self, i: usize) -> usize {
        match &self.counts {
            Some(c) => c.count(i) as usize * self.elems_per_block,
            None => self.elems_per_block,
        }
    }

    /// The element range segment `i` occupies in the logical vector.
    pub fn seg_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = match &self.counts {
            Some(c) => c.per_rank()[..i].iter().sum::<u64>() as usize * self.elems_per_block,
            None => i * self.elems_per_block,
        };
        start..start + self.seg_elems(i)
    }

    /// The deterministic contribution of `rank` for element `j` of the
    /// logical vector (used by reduction collectives and broadcast).
    pub fn contribution(&self, rank: usize, j: usize) -> f64 {
        (rank as f64 + 1.0) * 0.5 + (j as f64) * 0.125 + ((rank * 31 + j * 7) % 13) as f64
    }

    /// The deterministic content of the alltoall block sent by `origin` to
    /// `dest`, element `j`.
    pub fn pairwise_value(&self, origin: usize, dest: usize, j: usize) -> f64 {
        origin as f64 * 1000.0 + dest as f64 + j as f64 * 0.25
    }

    /// Length of the logical vector: `p` blocks of `elems_per_block`, or the
    /// counts-weighted total for irregular workloads.
    pub fn vector_len(&self) -> usize {
        match &self.counts {
            Some(c) => c.total() as usize * self.elems_per_block,
            None => self.num_ranks * self.elems_per_block,
        }
    }

    /// The full input vector of `rank`.
    pub fn full_vector(&self, rank: usize) -> Vec<f64> {
        (0..self.vector_len())
            .map(|j| self.contribution(rank, j))
            .collect()
    }

    /// Segment `i` of the input vector of `rank` (empty for a zero-count
    /// segment of an irregular workload).
    pub fn segment(&self, rank: usize, i: usize) -> Vec<f64> {
        self.seg_range(i)
            .map(|j| self.contribution(rank, j))
            .collect()
    }

    /// The elementwise sum of all ranks' contributions for element `j`.
    pub fn reduced(&self, j: usize) -> f64 {
        (0..self.num_ranks).map(|r| self.contribution(r, j)).sum()
    }

    /// The fully reduced values of segment `i`.
    pub fn reduced_segment(&self, i: usize) -> Vec<f64> {
        self.seg_range(i).map(|j| self.reduced(j)).collect()
    }

    /// Builds the initial per-rank block stores required by `schedule`.
    ///
    /// Only the block granularities actually referenced by the schedule are
    /// materialised (e.g. a tree broadcast uses `Full` blocks, a
    /// scatter+allgather broadcast uses `Segment` blocks).
    pub fn initial_state(&self, schedule: &Schedule) -> Vec<BlockStore> {
        let p = self.num_ranks;
        let uses_full = schedule
            .messages()
            .any(|(_, m)| m.blocks.iter().any(|b| matches!(b, BlockId::Full)));
        let uses_segments = schedule
            .messages()
            .any(|(_, m)| m.blocks.iter().any(|b| matches!(b, BlockId::Segment(_))));
        let mut states: Vec<BlockStore> = (0..p).map(|_| BlockStore::new()).collect();
        match self.collective {
            Collective::Broadcast => {
                if uses_full || !uses_segments {
                    states[self.root].insert(BlockId::Full, self.full_vector(self.root));
                }
                if uses_segments {
                    for i in 0..p {
                        states[self.root]
                            .insert(BlockId::Segment(i as u32), self.segment(self.root, i));
                    }
                }
            }
            Collective::Reduce | Collective::Allreduce => {
                for (r, state) in states.iter_mut().enumerate() {
                    if uses_full || !uses_segments {
                        state.insert(BlockId::Full, self.full_vector(r));
                    }
                    if uses_segments {
                        for i in 0..p {
                            state.insert(BlockId::Segment(i as u32), self.segment(r, i));
                        }
                    }
                }
            }
            Collective::ReduceScatter => {
                for (r, state) in states.iter_mut().enumerate() {
                    for i in 0..p {
                        state.insert(BlockId::Segment(i as u32), self.segment(r, i));
                    }
                }
            }
            Collective::Gather | Collective::Allgather => {
                for (r, state) in states.iter_mut().enumerate() {
                    // Each rank contributes its own data for the slot that
                    // belongs to it in the gathered vector.
                    state.insert(BlockId::Segment(r as u32), self.segment(r, r));
                }
            }
            Collective::Scatter => {
                for i in 0..p {
                    states[self.root]
                        .insert(BlockId::Segment(i as u32), self.segment(self.root, i));
                }
            }
            Collective::Alltoall => {
                for (r, state) in states.iter_mut().enumerate() {
                    for d in 0..p {
                        let data: Vec<f64> = (0..self.elems_per_block)
                            .map(|j| self.pairwise_value(r, d, j))
                            .collect();
                        state.insert(
                            BlockId::Pairwise {
                                origin: r as u32,
                                dest: d as u32,
                            },
                            data,
                        );
                    }
                }
            }
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bine_sched::collectives::{allreduce, broadcast, AllreduceAlg, BroadcastAlg};

    #[test]
    fn block_store_reduce_adds_elementwise() {
        let mut s = BlockStore::new();
        s.insert(BlockId::Full, vec![1.0, 2.0]);
        s.reduce(BlockId::Full, &[0.5, 0.5]);
        assert_eq!(s.get(&BlockId::Full).unwrap(), &vec![1.5, 2.5]);
        s.reduce(BlockId::Segment(0), &[1.0]);
        assert_eq!(s.get(&BlockId::Segment(0)).unwrap(), &vec![1.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn initial_state_matches_block_granularity_of_the_schedule() {
        let p = 8;
        let tree = broadcast(p, 0, BroadcastAlg::BineTree);
        let w = Workload::for_schedule(&tree, 4);
        let init = w.initial_state(&tree);
        assert!(init[0].get(&BlockId::Full).is_some());
        assert!(init[1].is_empty());

        let sag = broadcast(p, 0, BroadcastAlg::BineScatterAllgather);
        let init = Workload::for_schedule(&sag, 4).initial_state(&sag);
        assert!(init[0].get(&BlockId::Segment(3)).is_some());

        let small = allreduce(p, AllreduceAlg::BineSmall);
        let init = Workload::for_schedule(&small, 4).initial_state(&small);
        assert_eq!(init[5].len(), 1);
        let large = allreduce(p, AllreduceAlg::BineLarge);
        let init = Workload::for_schedule(&large, 4).initial_state(&large);
        assert_eq!(init[5].len(), p);
    }

    #[test]
    fn workload_values_are_deterministic() {
        let w = Workload::new(4, 2, Collective::Allreduce, 0);
        assert_eq!(w.contribution(1, 3), w.contribution(1, 3));
        assert_eq!(
            w.reduced(0),
            (0..4).map(|r| w.contribution(r, 0)).sum::<f64>()
        );
        assert_eq!(w.full_vector(2).len(), 8);
        assert_eq!(w.segment(2, 3), w.full_vector(2)[6..8].to_vec());
    }
}
