//! Quickstart: run a Bine allreduce over real data on a simulated 8-rank
//! cluster, then look at why it helps — the bytes it keeps off the global
//! links of an oversubscribed network.
//!
//! Run with: `cargo run --release --example quickstart`

use bine::net::traffic::global_bytes;
use bine::prelude::*;

fn main() {
    // --- 1. Correctness: the collectives produce real results. -------------
    let cluster = Cluster::new(8);
    let inputs: Vec<Vec<f64>> = (0..8).map(|rank| vec![rank as f64 + 1.0; 16]).collect();

    let result = cluster.allreduce(&inputs, AllreduceAlg::BineLarge);
    // 1 + 2 + ... + 8 = 36 in every position, on every rank.
    assert!(result.iter().all(|v| v.iter().all(|&x| x == 36.0)));
    println!(
        "allreduce over 8 simulated ranks: every rank holds {:?}...",
        &result[0][..4]
    );

    let bcast = cluster.broadcast(&[1.5; 8], 0, BroadcastAlg::BineTree);
    assert!(bcast.iter().all(|v| v == &vec![1.5; 8]));
    println!("broadcast from rank 0: every rank received the root buffer\n");

    // --- 2. Locality: the same schedules, counted on a 2:1 fat tree. -------
    // This is the example of Fig. 1 in the paper: 8 nodes, two per leaf
    // switch, one uplink per switch.
    let topo = FatTree::figure1();
    let alloc = Allocation::block(8);
    let n = 1 << 20; // 1 MiB vectors

    let bine_bcast = broadcast(8, 0, BroadcastAlg::BineTree);
    let ompi_bcast = broadcast(8, 0, BroadcastAlg::BinomialDistanceDoubling);
    println!(
        "broadcast bytes over global links   bine = {:>8}   binomial (Open MPI) = {:>8}",
        global_bytes(&bine_bcast, n, &topo, &alloc),
        global_bytes(&ompi_bcast, n, &topo, &alloc),
    );

    let bine_ar = allreduce(8, AllreduceAlg::BineLarge);
    let base_ar = allreduce(8, AllreduceAlg::Rabenseifner);
    println!(
        "allreduce bytes over global links   bine = {:>8}   rabenseifner        = {:>8}",
        global_bytes(&bine_ar, n, &topo, &alloc),
        global_bytes(&base_ar, n, &topo, &alloc),
    );
}
