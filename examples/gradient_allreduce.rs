//! Data-parallel training scenario: gradient allreduce across many nodes of
//! a Dragonfly+ machine (the Leonardo model), the workload that motivates
//! large-vector allreduce optimisation in the paper's introduction.
//!
//! The example (1) verifies numerically that the Bine allreduce produces the
//! same averaged gradients as a ring allreduce, and (2) sweeps the gradient
//! bucket size to show where each algorithm family wins on the modelled
//! network — the crossover structure of Fig. 10a.
//!
//! Run with: `cargo run --release --example gradient_allreduce`

use bine::net::trace::JobTraceGenerator;
use bine::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. Numerical check on a small simulated cluster. ------------------
    let workers = 16;
    let params = 4096;
    let cluster = Cluster::new(workers);
    let mut rng = StdRng::seed_from_u64(7);
    let gradients: Vec<Vec<f64>> = (0..workers)
        .map(|_| (0..params).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    let bine = cluster.allreduce(&gradients, AllreduceAlg::BineLarge);
    let ring = cluster.allreduce(&gradients, AllreduceAlg::Ring);
    let max_diff = bine[0]
        .iter()
        .zip(&ring[0])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("bine vs ring gradient allreduce: max |difference| = {max_diff:.3e}");
    assert!(max_diff < 1e-9);

    // --- 2. Modelled time on 512 Leonardo nodes, sweeping bucket size. ------
    let nodes = 512;
    let topo = Dragonfly::leonardo();
    let mut rng = StdRng::seed_from_u64(11);
    let alloc: Allocation =
        JobTraceGenerator::default().sample(&topo, nodes, 1, &mut rng)[0].allocation();
    let model = CostModel::default();

    println!(
        "\nmodelled allreduce time on {} ({} nodes):",
        topo.name(),
        nodes
    );
    println!(
        "{:>12}  {:>12} {:>12} {:>12} {:>12}",
        "bucket", "bine", "rec-doubling", "rabenseifner", "ring"
    );
    for bucket in [64 * 1024u64, 1 << 20, 16 << 20, 256 << 20] {
        let t = |alg: AllreduceAlg| {
            let sched = allreduce(nodes, alg);
            model.time_us(&sched, bucket, &topo, &alloc)
        };
        println!(
            "{:>9} KiB  {:>10.0}us {:>10.0}us {:>10.0}us {:>10.0}us",
            bucket / 1024,
            t(AllreduceAlg::BineLarge),
            t(AllreduceAlg::RecursiveDoubling),
            t(AllreduceAlg::Rabenseifner),
            t(AllreduceAlg::Ring),
        );
    }
}
