//! Torus-optimized Bine collectives (Appendix D): on a Fugaku-like torus the
//! flat rank space hides physical distance, so the Bine construction is
//! applied dimension by dimension and the vector is split across 2·D ports.
//!
//! The example compares hop counts and modelled allreduce time of the flat
//! and torus-optimized Bine butterflies on an 8x8x8 sub-torus, and shows the
//! per-port schedules used for multi-port execution.
//!
//! Run with: `cargo run --release --example torus_fugaku`

use bine::core::butterfly::{Butterfly, ButterflyKind};
use bine::core::torus::{TorusButterfly, TorusShape};
use bine::prelude::*;

fn main() {
    let shape = TorusShape::new(vec![8, 8, 8]);
    let p = shape.num_ranks();
    let topo = Torus::new(shape.dims().to_vec());
    let alloc = Allocation::block(p);
    let model = CostModel::default();

    // --- Hop counts: flat vs torus-optimized construction. -----------------
    let flat = Butterfly::new(ButterflyKind::BineDistanceDoubling, p);
    let opt = TorusButterfly::new(shape.clone(), ButterflyKind::BineDistanceDoubling);
    let hops = |pairs: Vec<(usize, usize)>| -> usize {
        pairs.iter().map(|&(a, b)| shape.hop_distance(a, b)).sum()
    };
    let flat_hops: usize = (0..flat.num_steps())
        .map(|s| hops((0..p).map(|r| (r, flat.partner(r, s))).collect()))
        .sum();
    let opt_hops: usize = (0..opt.num_steps())
        .map(|s| hops((0..p).map(|r| (r, opt.partner(r, s))).collect()))
        .sum();
    println!("total hop·messages on the {} torus:", topo_name(&shape));
    println!("  flat Bine butterfly            : {flat_hops}");
    println!("  torus-optimized Bine butterfly : {opt_hops}\n");

    // --- Modelled allreduce time of the schedule-level algorithms. ---------
    println!("modelled allreduce time on the torus (512 nodes):");
    for (name, alg) in [
        ("bine (reduce-scatter + allgather)", AllreduceAlg::BineLarge),
        ("recursive doubling", AllreduceAlg::RecursiveDoubling),
        ("rabenseifner", AllreduceAlg::Rabenseifner),
        ("ring", AllreduceAlg::Ring),
    ] {
        let sched = allreduce(p, alg);
        for n in [64 * 1024u64, 16 << 20] {
            println!(
                "  {:<34} {:>6} KiB: {:>9.0} us",
                name,
                n / 1024,
                model.time_us(&sched, n, &topo, &alloc)
            );
        }
    }

    // --- Discrete-event simulation and pipelining. --------------------------
    // The synchronous model above charges every step as a global barrier.
    // The DES tracks per-rank dependencies instead, so segmenting the
    // bine-large schedule into pipeline chunks (`Schedule::segmented`) lets
    // a rank forward chunk c while chunk c + 1 is still arriving — the ring,
    // whose messages carry a single block, cannot pipeline further.
    println!("\nsimulated allreduce time at 16 MiB (us): flat vs pipelined schedules");
    let n = 16 << 20;
    for (name, alg) in [
        ("bine (reduce-scatter + allgather)", AllreduceAlg::BineLarge),
        ("ring", AllreduceAlg::Ring),
    ] {
        let sched = allreduce(p, alg);
        let flat = SimRequest::new(&model, &sched.compile(), n, &topo, &alloc)
            .run()
            .makespan_us();
        let piped = SimRequest::new(&model, &sched.segmented(8).compile(), n, &topo, &alloc)
            .run()
            .makespan_us();
        println!("  {name:<34} DES: {flat:>9.0}   DES + 8 chunks: {piped:>9.0}");
    }

    // --- Multi-port schedules (Appendix D.4). -------------------------------
    println!(
        "\nmulti-port execution: each of the 2·D = 6 ports starts along a different direction"
    );
    for port in 0..6 {
        let bf = TorusButterfly::for_port(shape.clone(), ButterflyKind::BineDistanceDoubling, port);
        let first_dim = bf.step_dimension(0);
        let partner_of_zero = bf.partner(0, 0);
        println!(
            "  port {port}: dimension order {:?}, rank 0 first exchanges with rank {partner_of_zero} (coords {:?})",
            bf.dim_order(),
            shape.coords(partner_of_zero)
        );
        let _ = first_dim;
    }
}

fn topo_name(shape: &TorusShape) -> String {
    shape
        .dims()
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}
