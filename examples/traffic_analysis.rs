//! Traffic analysis of a fragmented job allocation: how many bytes each
//! collective pushes over the global links of a Dragonfly machine, with the
//! Bine algorithm versus the binomial-tree/butterfly baseline.
//!
//! This is the per-job analysis behind Fig. 5 and the "Traffic Red." columns
//! of Tables 3–5, exposed as a small reusable tool.
//!
//! Run with: `cargo run --release --example traffic_analysis`

use bine::net::trace::JobTraceGenerator;
use bine::net::traffic::measure;
use bine::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = Dragonfly::lumi();
    let nodes = 256;
    let n = 8 << 20; // 8 MiB vectors

    // A fragmented allocation, as a real scheduler would hand out.
    let mut rng = StdRng::seed_from_u64(2024);
    let sample = &JobTraceGenerator::with_occupancy(0.8).sample(&topo, nodes, 1, &mut rng)[0];
    let alloc = sample.allocation();
    println!(
        "job of {nodes} nodes on {}: spans {} of {} groups",
        topo.name(),
        alloc.groups_spanned(&topo),
        topo.num_groups()
    );
    println!("vector size: {} MiB\n", n >> 20);

    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10}",
        "collective", "bine global", "baseline global", "total bytes", "reduction"
    );
    for collective in Collective::ALL {
        let bine = build(collective, bine_default(collective, false), nodes, 0).unwrap();
        let base = build(collective, binomial_default(collective, false), nodes, 0).unwrap();
        let bine_report = measure(&bine, n, &topo, &alloc);
        let base_report = measure(&base, n, &topo, &alloc);
        let reduction =
            1.0 - bine_report.global_bytes as f64 / base_report.global_bytes.max(1) as f64;
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>9.1}%",
            collective.name(),
            bine_report.global_bytes,
            base_report.global_bytes,
            bine_report.total_bytes,
            reduction * 100.0
        );
    }
}
