//! # bine
//!
//! Meta-crate of the Bine Trees reproduction: re-exports the five workspace
//! crates so the examples under `examples/` and the integration tests under
//! `tests/` can be expressed against one dependency. See the individual
//! crates for the real API surface:
//!
//! * [`core`](bine_core) — negabinary arithmetic, Bine trees/butterflies,
//! * [`sched`](bine_sched) — explicit communication schedules + compiler,
//! * [`exec`](bine_exec) — zero-copy executors over real data,
//! * [`net`](bine_net) — topology models and traffic accounting,
//! * [`bench`](bine_bench) — the paper's table/figure harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bine_bench as bench;
pub use bine_core as core;
pub use bine_exec as exec;
pub use bine_net as net;
pub use bine_sched as sched;
