//! # bine
//!
//! Meta-crate of the Bine Trees reproduction: re-exports the five workspace
//! crates so the examples under `examples/` and the integration tests under
//! `tests/` can be expressed against one dependency. See the individual
//! crates for the real API surface:
//!
//! * [`core`] — negabinary arithmetic, Bine trees/butterflies,
//! * [`sched`] — explicit communication schedules, the pipelining
//!   (segmentation) transform and the schedule compiler,
//! * [`exec`] — zero-copy executors over real data,
//! * [`net`] — topology models, traffic accounting and the two time models
//!   (synchronous barrier + discrete-event simulation),
//! * [`tune`] — the autotuning selection layer: offline decision-table
//!   generation and the runtime `Selector`,
//! * [`bench`](mod@bench) — the paper's table/figure harness and the CI
//!   perf and decision-table gates.
//!
//! `docs/ARCHITECTURE.md` walks through how the crates fit together.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bine_bench as bench;
pub use bine_core as core;
pub use bine_exec as exec;
pub use bine_net as net;
pub use bine_sched as sched;
pub use bine_tune as tune;
