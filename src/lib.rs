//! # bine
//!
//! Meta-crate of the Bine Trees reproduction: re-exports the five workspace
//! crates so the examples under `examples/` and the integration tests under
//! `tests/` can be expressed against one dependency. See the individual
//! crates for the real API surface:
//!
//! * [`core`] — negabinary arithmetic, Bine trees/butterflies,
//! * [`sched`] — explicit communication schedules, the pipelining
//!   (segmentation) transform and the schedule compiler,
//! * [`exec`] — zero-copy executors over real data,
//! * [`net`] — topology models, traffic accounting and the two time models
//!   (synchronous barrier + discrete-event simulation),
//! * [`tune`] — the autotuning selection layer: offline decision-table
//!   generation and the runtime `Selector`,
//! * [`bench`](mod@bench) — the paper's table/figure harness and the CI
//!   perf and decision-table gates.
//!
//! `docs/ARCHITECTURE.md` walks through how the crates fit together.
//!
//! For day-to-day use, `use bine::prelude::*;` pulls in the blessed
//! surface of the whole stack — see [`prelude`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bine_bench as bench;
pub use bine_core as core;
pub use bine_exec as exec;
pub use bine_net as net;
pub use bine_sched as sched;
pub use bine_tune as tune;

pub mod prelude {
    //! The blessed one-stop surface of the stack: everything the
    //! build-a-schedule → compile → execute / simulate / select flow needs,
    //! re-exported under one `use bine::prelude::*;`.
    //!
    //! * **construct** — [`build`] and the per-collective constructors
    //!   ([`allreduce()`], [`broadcast()`], …) produce a [`Schedule`]; pipelining
    //!   is `Schedule::segmented`, compilation `Schedule::compile`;
    //! * **execute** — [`Cluster`] for the MPI-like facade over plain buffers,
    //!   [`ExecutorPool`] (+ the fallible [`ExecError`] surface) to run a
    //!   [`CompiledSchedule`] over [`BlockStore`]s directly;
    //! * **model** — [`SimRequest`] drives both time models over a
    //!   [`Topology`] ([`FatTree`], [`Dragonfly`], [`Torus`]) and an
    //!   [`Allocation`], optionally with a [`FaultPlan`];
    //! * **select & adapt** — [`Selector`] / [`ServiceSelector`] answer from
    //!   committed [`DecisionTable`]s; [`ObservedTiming`] feedback plus
    //!   [`AdaptPolicy`] / [`Reevaluator`] drive the online adaptive overlay.
    //!
    //! Anything deeper (negabinary internals, traffic accounting, the tuner
    //! itself) stays behind the individual crates' full paths on purpose:
    //! the prelude is the stable, documented core.

    pub use bine_exec::comm::Cluster;
    pub use bine_exec::{Block, BlockStore, ExecError, ExecutorPool, Workload};
    pub use bine_net::sim::{SimArena, SimOutcome, SimReport, SimRequest};
    pub use bine_net::{
        Allocation, CostModel, Dragonfly, FatTree, FaultPlan, FaultSpec, LogHistogram,
        ObservedTiming, TimingSource, Topology, Torus,
    };
    pub use bine_sched::collectives::{
        allgather, allreduce, alltoall, broadcast, reduce, reduce_scatter, AllgatherAlg,
        AllreduceAlg, AlltoallAlg, BroadcastAlg, ReduceAlg, ReduceScatterAlg,
    };
    pub use bine_sched::{
        algorithms, bine_default, binomial_default, build, Collective, CompiledSchedule, Schedule,
    };
    pub use bine_tune::{
        AdaptPolicy, AdaptiveOverlay, DecisionTable, OverlayEntry, Reevaluator, Selector,
        ServiceSelector,
    };
}
